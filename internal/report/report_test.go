package report

import (
	"math"
	"strings"
	"testing"

	"neusight/internal/graph"
	"neusight/internal/kernels"
)

func testGraph() *graph.Graph {
	g := graph.New("t")
	a := g.Add(kernels.NewLinear(512, 512, 512))
	b := g.Add(kernels.NewElementwise(kernels.OpEWGELU, 512, 512), a)
	g.Add(kernels.NewLinear(512, 512, 512), b) // same label as node a
	g.Add(kernels.NewAllReduce(1024), b)       // must be excluded
	return g
}

func unitLat(k kernels.Kernel) float64 {
	if k.Category() == kernels.CatLinear {
		return 10
	}
	return 5
}

func TestAnalyzeTotalsAndShares(t *testing.T) {
	b := Analyze(testGraph(), unitLat, 10)
	if b.TotalMs != 25 {
		t.Fatalf("total = %v, want 25 (network excluded)", b.TotalMs)
	}
	if b.ByCategory[0].Category != kernels.CatLinear || math.Abs(b.ByCategory[0].Percent-80) > 1e-9 {
		t.Fatalf("top category = %+v, want Linear at 80%%", b.ByCategory[0])
	}
	sum := 0.0
	for _, c := range b.ByCategory {
		sum += c.Percent
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
}

func TestAnalyzeAggregatesRepeatedKernels(t *testing.T) {
	b := Analyze(testGraph(), unitLat, 10)
	if b.TopKernels[0].Count != 2 || b.TopKernels[0].TotalMs != 20 {
		t.Fatalf("top kernel = %+v, want the doubled linear", b.TopKernels[0])
	}
}

func TestAnalyzeTopNTruncation(t *testing.T) {
	b := Analyze(testGraph(), unitLat, 1)
	if len(b.TopKernels) != 1 {
		t.Fatalf("topN ignored: %d entries", len(b.TopKernels))
	}
}

func TestRenderContainsSections(t *testing.T) {
	out := Analyze(testGraph(), unitLat, 5).Render()
	for _, want := range []string{"total predicted latency", "by operator category", "top kernels", "FC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	b := Analyze(graph.New("empty"), unitLat, 5)
	if b.TotalMs != 0 || len(b.ByCategory) != 0 {
		t.Fatalf("empty graph breakdown = %+v", b)
	}
	if !strings.Contains(b.Render(), "0.0 ms") {
		t.Fatal("render of empty breakdown should still show the total")
	}
}
