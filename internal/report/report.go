// Package report renders human-readable breakdowns of a latency forecast:
// per-operator-category shares (the view of paper Table 6) and the top
// individual kernels — the first things a practitioner asks of a forecast.
package report

import (
	"fmt"
	"sort"
	"strings"

	"neusight/internal/graph"
	"neusight/internal/kernels"
)

// Breakdown summarizes a priced graph.
type Breakdown struct {
	TotalMs    float64
	ByCategory []CategoryShare
	TopKernels []KernelCost
}

// CategoryShare is one operator category's contribution.
type CategoryShare struct {
	Category kernels.Category
	Ms       float64
	Percent  float64
	Count    int
}

// KernelCost is one kernel's aggregate cost across its occurrences.
type KernelCost struct {
	Label   string
	Count   int
	TotalMs float64
	Percent float64
}

// Analyze prices every kernel of gr with kernelLat and produces the
// breakdown, keeping the topN most expensive distinct kernels.
func Analyze(gr *graph.Graph, kernelLat func(kernels.Kernel) float64, topN int) Breakdown {
	var b Breakdown
	catMs := map[kernels.Category]float64{}
	catN := map[kernels.Category]int{}
	kernMs := map[string]float64{}
	kernN := map[string]int{}
	for _, k := range gr.Kernels() {
		if k.Category() == kernels.CatNetwork {
			continue
		}
		ms := kernelLat(k)
		b.TotalMs += ms
		catMs[k.Category()] += ms
		catN[k.Category()]++
		kernMs[k.Label()] += ms
		kernN[k.Label()]++
	}
	for cat, ms := range catMs {
		b.ByCategory = append(b.ByCategory, CategoryShare{
			Category: cat, Ms: ms, Percent: safePct(ms, b.TotalMs), Count: catN[cat],
		})
	}
	sort.Slice(b.ByCategory, func(i, j int) bool { return b.ByCategory[i].Ms > b.ByCategory[j].Ms })

	for label, ms := range kernMs {
		b.TopKernels = append(b.TopKernels, KernelCost{
			Label: label, Count: kernN[label], TotalMs: ms, Percent: safePct(ms, b.TotalMs),
		})
	}
	sort.Slice(b.TopKernels, func(i, j int) bool {
		if b.TopKernels[i].TotalMs != b.TopKernels[j].TotalMs {
			return b.TopKernels[i].TotalMs > b.TopKernels[j].TotalMs
		}
		return b.TopKernels[i].Label < b.TopKernels[j].Label
	})
	if topN > 0 && len(b.TopKernels) > topN {
		b.TopKernels = b.TopKernels[:topN]
	}
	return b
}

func safePct(part, total float64) float64 {
	if total == 0 {
		return 0
	}
	return part / total * 100
}

// Render formats the breakdown as aligned text.
func (b Breakdown) Render() string {
	var s strings.Builder
	fmt.Fprintf(&s, "total predicted latency: %.1f ms\n\nby operator category:\n", b.TotalMs)
	for _, c := range b.ByCategory {
		fmt.Fprintf(&s, "  %-8s %9.2f ms  %5.1f%%  (%d kernels)\n", c.Category, c.Ms, c.Percent, c.Count)
	}
	if len(b.TopKernels) > 0 {
		s.WriteString("\ntop kernels:\n")
		for _, k := range b.TopKernels {
			fmt.Fprintf(&s, "  %-42s x%-4d %9.2f ms  %5.1f%%\n", k.Label, k.Count, k.TotalMs, k.Percent)
		}
	}
	return s.String()
}
