// Package observe closes the loop between prediction and reality:
// measured kernel latencies reported by clients (POST /v2/observe) are
// compared against the serving engine's current predictions, per-(engine,
// GPU) drift is tracked as a rolling MAPE, and when drift crosses a
// threshold a single-flight background worker folds the observations into
// the training set and retrains the affected categories — hot-swapping
// the model through the predictor's generation bump so the existing
// cache-key versioning and cluster gossip invalidate stale forecasts with
// no new coordination.
package observe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"neusight/internal/kernels"
)

// Record is one persisted observation: a (engine, kernel, GPU) key plus
// the latency a client measured for it, serialized with the operator's
// canonical name so a store written by one build replays in another. The
// JSONL framing mirrors the serve package's workload traces.
type Record struct {
	Engine     string  `json:"engine"`
	GPU        string  `json:"gpu"`
	Op         string  `json:"op"`
	B          int     `json:"b,omitempty"`
	M          int     `json:"m,omitempty"`
	K          int     `json:"k,omitempty"`
	N          int     `json:"n,omitempty"`
	DType      string  `json:"dtype,omitempty"`
	ObservedMs float64 `json:"observed_ms"`
}

// NewRecord serializes an observed key.
func NewRecord(engine string, k kernels.Kernel, gpuName string, observedMs float64) Record {
	r := Record{
		Engine: engine, GPU: gpuName,
		Op: k.Op.String(), B: k.B, M: k.M, K: k.K, N: k.N,
		ObservedMs: observedMs,
	}
	if k.DType != kernels.FP32 {
		r.DType = k.DType.String()
	}
	return r
}

// Kernel reconstructs the kernel a record describes.
func (r Record) Kernel() (kernels.Kernel, error) {
	op, ok := kernels.OpByName(r.Op)
	if !ok {
		return kernels.Kernel{}, fmt.Errorf("unknown op %q", r.Op)
	}
	k := kernels.Kernel{Op: op, B: r.B, M: r.M, K: r.K, N: r.N}
	switch r.DType {
	case "", "fp32":
	case "fp16":
		k.DType = kernels.FP16
	default:
		return kernels.Kernel{}, fmt.Errorf("unknown dtype %q", r.DType)
	}
	return k, nil
}

// DefaultStoreCap bounds a store that was opened without an explicit cap.
const DefaultStoreCap = 8192

// Store is a bounded, crash-safe observation log: an append-only JSONL
// file holding the newest cap observations. Every append is flushed
// through to the file (an observation accepted is an observation that
// survives a kill), the oldest records are evicted past the cap, and the
// file is compacted — atomically, via tmp+rename — once the on-disk log
// grows to twice the cap, so disk usage is bounded even though appends
// never rewrite the file. Safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	path      string
	cap       int
	f         *os.File
	bw        *bufio.Writer
	recs      []Record
	fileLines int    // lines currently in the file, evicted records included
	skipped   int    // corrupt/unparseable lines dropped at open
	evicted   uint64 // records dropped past the cap
	compacts  uint64 // tmp+rename rewrites
	err       error  // first write error; appends stop permanently
}

// OpenStore opens (creating if absent) the observation store at path,
// keeping at most capacity records (DefaultStoreCap when <= 0). A
// leftover temporary file from a crash mid-compaction is discarded — the
// rename never happened, so the main file is the authoritative copy.
// Damaged lines in the file are skipped and counted, never fatal; if the
// file holds more than capacity valid records only the newest survive,
// and the pruned file is written back immediately so evicted records
// cannot resurrect after a kill.
func OpenStore(path string, capacity int) (*Store, error) {
	if capacity <= 0 {
		capacity = DefaultStoreCap
	}
	os.Remove(path + compactSuffix)
	s := &Store{path: path, cap: capacity}
	if f, err := os.Open(path); err == nil {
		s.recs, s.skipped = readRecords(f)
		f.Close()
		s.fileLines = len(s.recs) + s.skipped
	}
	if over := len(s.recs) - capacity; over > 0 {
		s.recs = append([]Record(nil), s.recs[over:]...)
		s.evicted += uint64(over)
	}
	if s.evicted > 0 || s.skipped > 0 {
		// Rewrite now, not lazily: a kill before the next compaction must
		// not bring evicted or corrupt lines back.
		if err := writeRecordFile(path, s.recs); err != nil {
			return nil, err
		}
		s.fileLines = len(s.recs)
		s.compacts++
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("observe: open store: %w", err)
	}
	s.f, s.bw = f, bufio.NewWriter(f)
	return s, nil
}

// Append persists one observation. The line is flushed through to the
// file before Append returns; past the cap the oldest in-memory record is
// evicted, and once the file holds twice the cap it is compacted down to
// the live records.
func (s *Store) Append(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	line, err := json.Marshal(r)
	if err == nil {
		_, err = s.bw.Write(append(line, '\n'))
	}
	if err == nil {
		err = s.bw.Flush()
	}
	if err != nil {
		s.err = err
		return err
	}
	s.fileLines++
	s.recs = append(s.recs, r)
	if len(s.recs) > s.cap {
		n := copy(s.recs, s.recs[1:])
		s.recs = s.recs[:n]
		s.evicted++
	}
	if s.fileLines >= 2*s.cap && s.fileLines > len(s.recs) {
		if err := s.compactLocked(); err != nil {
			s.err = err
			return err
		}
	}
	return nil
}

// compactLocked rewrites the file down to the live records: close the
// append handle, atomically replace the file (tmp+rename — a crash leaves
// the old log or the new one, never a torn file), reopen for append.
// Callers hold s.mu.
func (s *Store) compactLocked() error {
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("observe: compact store: %w", err)
	}
	if err := writeRecordFile(s.path, s.recs); err != nil {
		return err
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("observe: compact store: %w", err)
	}
	s.f, s.bw = f, bufio.NewWriter(f)
	s.fileLines = len(s.recs)
	s.compacts++
	return nil
}

// Records returns a copy of the live records, oldest first.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.recs...)
}

// Stats reports the store's state for the drift report.
type StoreStats struct {
	Path        string `json:"path"`
	Records     int    `json:"records"`
	Cap         int    `json:"cap"`
	Skipped     int    `json:"skipped,omitempty"` // corrupt lines dropped at open
	Evicted     uint64 `json:"evicted,omitempty"`
	Compactions uint64 `json:"compactions,omitempty"`
}

// Stats returns the store's current state.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Path: s.path, Records: len(s.recs), Cap: s.cap,
		Skipped: s.skipped, Evicted: s.evicted, Compactions: s.compacts,
	}
}

// Close flushes and closes the store file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if err := s.f.Close(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

const compactSuffix = ".compact.tmp"

// writeRecordFile atomically replaces the store at path with recs (write
// to a temporary file, then rename).
func writeRecordFile(path string, recs []Record) error {
	tmp := path + compactSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("observe: compact store: %w", err)
	}
	bw := bufio.NewWriter(f)
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err == nil {
			_, err = bw.Write(append(line, '\n'))
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("observe: compact store: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("observe: compact store: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("observe: compact store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("observe: compact store: %w", err)
	}
	return nil
}

// readRecords parses JSONL observation data with the same damage
// tolerance as trace replay: truncated, corrupt, unparseable, or absurdly
// long lines are skipped and counted — damage anywhere in the file must
// not void the valid observations before or after it.
func readRecords(r io.Reader) (recs []Record, skipped int) {
	br := bufio.NewReaderSize(r, 64*1024)
	for {
		line, isPrefix, readErr := br.ReadLine()
		if readErr != nil {
			if readErr != io.EOF {
				skipped++
			}
			break
		}
		if isPrefix {
			// A line longer than the read buffer is not an observation
			// (records are a few hundred bytes): drain and count one skip.
			skipped++
			for isPrefix && readErr == nil {
				_, isPrefix, readErr = br.ReadLine()
			}
			if readErr != nil {
				break
			}
			continue
		}
		if len(line) == 0 {
			continue
		}
		var rec Record
		if jsonErr := json.Unmarshal(line, &rec); jsonErr != nil ||
			rec.Op == "" || rec.GPU == "" || rec.Engine == "" || !(rec.ObservedMs > 0) {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	return recs, skipped
}
