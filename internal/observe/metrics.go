package observe

import (
	"fmt"
	"io"
)

// WriteMetrics renders a drift report as neusight_observe_* Prometheus
// text-format families. A nil report (observation ingestion disabled)
// writes nothing, matching the other optional metric sections.
func WriteMetrics(w io.Writer, rep *Report) {
	if rep == nil {
		return
	}
	scalar := []struct {
		name, help, typ string
		value           float64
	}{
		{"neusight_observe_ingested_total", "Observations accepted into drift windows.", "counter", float64(rep.Ingested)},
		{"neusight_observe_rejected_total", "Observations rejected (bad latency or failed prediction).", "counter", float64(rep.Rejected)},
		{"neusight_observe_retrains_total", "Calibration retrains completed.", "counter", float64(rep.Retrains)},
		{"neusight_observe_retrain_errors_total", "Calibration retrains that failed.", "counter", float64(rep.RetrainErrors)},
		{"neusight_observe_retrain_active", "1 while a background retrain is in flight.", "gauge", boolVal(rep.RetrainActive)},
		{"neusight_observe_drift_threshold", "Rolling-MAPE level above which a retrainable engine retrains.", "gauge", rep.Threshold},
		{"neusight_observe_windows", "Live (engine, GPU) drift windows.", "gauge", float64(len(rep.Windows))},
	}
	if rep.Store != nil {
		scalar = append(scalar,
			struct {
				name, help, typ string
				value           float64
			}{"neusight_observe_store_records", "Observations held in the persistent store.", "gauge", float64(rep.Store.Records)},
			struct {
				name, help, typ string
				value           float64
			}{"neusight_observe_store_evicted_total", "Observations evicted past the store cap.", "counter", float64(rep.Store.Evicted)},
			struct {
				name, help, typ string
				value           float64
			}{"neusight_observe_store_compactions_total", "Store compactions (tmp+rename rewrites).", "counter", float64(rep.Store.Compactions)},
		)
	}
	for _, m := range scalar {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", m.name, m.help, m.name, m.typ, m.name, m.value)
	}
	if len(rep.Windows) == 0 {
		return
	}
	families := []struct {
		name, help, typ string
		value           func(WindowReport) float64
	}{
		{"neusight_observe_mape", "Rolling MAPE of predictions vs observations per (engine, GPU).", "gauge",
			func(w WindowReport) float64 { return w.MAPE }},
		{"neusight_observe_window_samples", "Observations currently in the drift window.", "gauge",
			func(w WindowReport) float64 { return float64(w.Samples) }},
		{"neusight_observe_drifting", "1 when the window MAPE is above the threshold.", "gauge",
			func(w WindowReport) float64 { return boolVal(w.Drifting) }},
		{"neusight_observe_retrainable", "1 when the engine has a registered calibration retrainer.", "gauge",
			func(w WindowReport) float64 { return boolVal(w.Retrainable) }},
	}
	for _, fam := range families {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.typ)
		for _, win := range rep.Windows {
			fmt.Fprintf(w, "%s{engine=%q,gpu=%q} %v\n", fam.name, win.Engine, win.GPU, fam.value(win))
		}
	}
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
