package observe

import (
	"context"
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

// BenchmarkObserveIngest measures the observation hot path: prediction
// resolution (flat here — the serving layers benchmark their own cost),
// window push, and drift check, without persistence.
func BenchmarkObserveIngest(b *testing.B) {
	m := NewMonitor(Config{Threshold: 100}, flatPredict) // never retrains
	defer m.Close()
	g := gpu.MustLookup("H100")
	ks := make([]kernels.Kernel, 64)
	for i := range ks {
		ks[i] = kernels.NewBMM(1, 64+i, 64, 64)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Ingest(ctx, "neusight", ks[i%len(ks)], g, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}
