package observe

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

// flatPredict always predicts 1ms — drift is then entirely in the
// observations the test feeds.
func flatPredict(context.Context, string, kernels.Kernel, gpu.Spec) (float64, error) {
	return 1.0, nil
}

func testMonitor(cfg Config) *Monitor { return NewMonitor(cfg, flatPredict) }

func ingestN(t *testing.T, m *Monitor, engine string, n int, observedMs float64) {
	t.Helper()
	g := gpu.MustLookup("H100")
	for i := 0; i < n; i++ {
		k := kernels.NewBMM(1, 64+i, 64, 64)
		if err := m.Ingest(context.Background(), engine, k, g, observedMs); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
}

func TestMonitorTracksDriftBeforeMinSamples(t *testing.T) {
	m := testMonitor(Config{Window: 8, MinSamples: 4, Threshold: 0.5})
	defer m.Close()
	// One wildly-off observation: drifting must already show on the
	// report (operators watch drift long before the retrain bar is met).
	ingestN(t, m, "neusight", 1, 10)
	rep := m.Report()
	if len(rep.Windows) != 1 {
		t.Fatalf("%d windows, want 1", len(rep.Windows))
	}
	w := rep.Windows[0]
	if w.Engine != "neusight" || w.GPU != "H100" || w.Samples != 1 {
		t.Fatalf("window = %+v", w)
	}
	if want := 0.9; math.Abs(w.MAPE-want) > 1e-9 {
		t.Fatalf("MAPE = %v, want %v", w.MAPE, want)
	}
	if !w.Drifting {
		t.Fatal("MAPE 0.9 over threshold 0.5 must report drifting")
	}
	if rep.Retrains != 0 {
		t.Fatal("one sample under MinSamples must not retrain")
	}
}

func TestMonitorRetrainSingleFlight(t *testing.T) {
	m := testMonitor(Config{Window: 16, MinSamples: 4, Threshold: 0.5})
	started := make(chan []dataset.Sample, 1)
	release := make(chan struct{})
	calls := 0
	m.RegisterRetrainer("neusight", func(calib []dataset.Sample) (uint64, error) {
		calls++
		started <- calib
		<-release
		return 7, nil
	})

	ingestN(t, m, "neusight", 4, 10) // MAPE 0.9 > 0.5 with MinSamples met
	calib := <-started
	if len(calib) != 4 {
		t.Fatalf("calibration set has %d samples, want 4", len(calib))
	}
	for _, s := range calib {
		if s.Latency != 10 {
			t.Fatalf("calibration latency %v, want the observed 10", s.Latency)
		}
	}
	if !m.Report().RetrainActive {
		t.Fatal("retrain in flight must report active")
	}

	// More drifting observations while the worker is blocked: single-flight
	// means no second retrain is scheduled.
	ingestN(t, m, "neusight", 8, 10)
	close(release)
	m.Close()
	if calls != 1 {
		t.Fatalf("retrainer ran %d times, want 1 (single-flight)", calls)
	}

	rep := m.Report()
	if rep.Retrains != 1 || rep.RetrainActive {
		t.Fatalf("report retrains=%d active=%v, want 1/false", rep.Retrains, rep.RetrainActive)
	}
	w := rep.Windows[0]
	if w.Samples != 0 {
		t.Fatalf("window holds %d samples after retrain, want 0 (reset against the new model)", w.Samples)
	}
	if w.Retrains != 1 || w.LastRetrainGeneration != 7 {
		t.Fatalf("window retrains=%d gen=%d, want 1/7", w.Retrains, w.LastRetrainGeneration)
	}
	if !w.Retrainable {
		t.Fatal("engine with a registered retrainer must report retrainable")
	}
}

// Engines without a retrainer — roofline, gpusim, any engine that has no
// trainable state — accept observations and report drift but never
// schedule a retrain, no matter how far past the threshold they go.
func TestMonitorAlertOnlyWithoutRetrainer(t *testing.T) {
	m := testMonitor(Config{Window: 8, MinSamples: 2, Threshold: 0.1})
	ingestN(t, m, "roofline", 8, 50) // far past both bars
	rep := m.Report()
	w := rep.Windows[0]
	if !w.Drifting {
		t.Fatal("alert-only engine must still report drift")
	}
	if w.Retrainable {
		t.Fatal("engine without a retrainer must report retrainable=false")
	}
	if rep.Retrains != 0 || rep.RetrainActive || w.Retrains != 0 {
		t.Fatalf("alert-only engine scheduled a retrain: %+v", rep)
	}
	// Close waits on the worker waitgroup: if a goroutine leaked, this
	// hangs and the test times out.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorBelowThresholdNeverRetrains(t *testing.T) {
	m := testMonitor(Config{Window: 8, MinSamples: 2, Threshold: 0.5})
	defer m.Close()
	m.RegisterRetrainer("neusight", func([]dataset.Sample) (uint64, error) {
		t.Error("retrain fired below threshold")
		return 0, nil
	})
	ingestN(t, m, "neusight", 8, 1.2) // MAPE ~0.17 < 0.5
	rep := m.Report()
	if rep.Windows[0].Drifting || rep.Retrains != 0 {
		t.Fatalf("in-tolerance window misreported: %+v", rep.Windows[0])
	}
}

func TestMonitorRejectsBadObservations(t *testing.T) {
	failingPredict := func(_ context.Context, engine string, _ kernels.Kernel, _ gpu.Spec) (float64, error) {
		if engine == "broken" {
			return 0, fmt.Errorf("no such engine")
		}
		return 1.0, nil
	}
	m := NewMonitor(Config{}, failingPredict)
	defer m.Close()
	g := gpu.MustLookup("H100")
	k := kernels.NewBMM(1, 64, 64, 64)
	ctx := context.Background()
	for _, tc := range []struct {
		engine string
		ms     float64
	}{
		{"", 1},                   // unresolved engine
		{"neusight", 0},           // non-positive
		{"neusight", -3},          // negative
		{"neusight", math.Inf(1)}, // non-finite
		{"broken", 1},             // prediction fails
	} {
		if err := m.Ingest(ctx, tc.engine, k, g, tc.ms); err == nil {
			t.Fatalf("engine=%q ms=%v accepted, want rejection", tc.engine, tc.ms)
		}
	}
	rep := m.Report()
	if rep.Rejected != 5 || rep.Ingested != 0 {
		t.Fatalf("rejected=%d ingested=%d, want 5/0", rep.Rejected, rep.Ingested)
	}
}

func TestMonitorRetrainErrorReported(t *testing.T) {
	m := testMonitor(Config{Window: 8, MinSamples: 2, Threshold: 0.5})
	m.RegisterRetrainer("neusight", func([]dataset.Sample) (uint64, error) {
		return 0, fmt.Errorf("category has no samples")
	})
	ingestN(t, m, "neusight", 2, 10)
	m.Close()
	rep := m.Report()
	if rep.RetrainErrors != 1 || rep.Retrains != 0 {
		t.Fatalf("retrain errors=%d retrains=%d, want 1/0", rep.RetrainErrors, rep.Retrains)
	}
	w := rep.Windows[0]
	if !strings.Contains(w.LastError, "no samples") {
		t.Fatalf("window last_error = %q, want the retrain failure", w.LastError)
	}
	if w.Samples == 0 {
		t.Fatal("a failed retrain must not clear the window")
	}
}

func TestMonitorPersistsAndReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	st, err := OpenStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	m := testMonitor(Config{Window: 8, MinSamples: 4, Threshold: 0.5, Store: st})
	ingestN(t, m, "neusight", 6, 10)
	if err := m.Close(); err != nil { // closes the store too
		t.Fatal(err)
	}

	st2, err := OpenStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	m2 := testMonitor(Config{Window: 8, MinSamples: 4, Threshold: 0.5, Store: st2})
	defer m2.Close()
	// Replay must never schedule a retrain, even with a retrainer
	// registered and the persisted window far past the threshold.
	m2.RegisterRetrainer("neusight", func([]dataset.Sample) (uint64, error) {
		t.Error("retrain fired during store replay")
		return 0, nil
	})
	replayed, skipped := m2.ReplayStore(context.Background())
	if replayed != 6 || skipped != 0 {
		t.Fatalf("replayed %d skipped %d, want 6/0", replayed, skipped)
	}
	rep := m2.Report()
	if len(rep.Windows) != 1 || rep.Windows[0].Samples != 6 {
		t.Fatalf("replay rebuilt %+v, want one 6-sample window", rep.Windows)
	}
	if !rep.Windows[0].Drifting {
		t.Fatal("replayed drift state lost")
	}
	if rep.Store == nil || rep.Store.Records != 6 {
		t.Fatalf("report store section = %+v, want 6 records", rep.Store)
	}
}

func TestMonitorReplaySkipsUnresolvable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	st, err := OpenStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Record{Engine: "neusight", GPU: "NO-SUCH-GPU", Op: "bmm", B: 1, M: 64, K: 64, N: 64, ObservedMs: 1}); err != nil {
		t.Fatal(err)
	}
	m := testMonitor(Config{Store: st})
	defer m.Close()
	replayed, skipped := m.ReplayStore(context.Background())
	if replayed != 1 || skipped != 1 {
		t.Fatalf("replayed %d skipped %d, want 1/1", replayed, skipped)
	}
}

func TestWindowRingEviction(t *testing.T) {
	m := testMonitor(Config{Window: 4, MinSamples: 4, Threshold: 100}) // threshold high: no retrain
	defer m.Close()
	ingestN(t, m, "neusight", 10, 2)
	rep := m.Report()
	w := rep.Windows[0]
	if w.Samples != 4 {
		t.Fatalf("window holds %d, want ring cap 4", w.Samples)
	}
	if w.Total != 10 {
		t.Fatalf("window total %d, want 10", w.Total)
	}
	if rep.Ingested != 10 {
		t.Fatalf("ingested %d, want 10", rep.Ingested)
	}
}

func TestWriteMetrics(t *testing.T) {
	m := testMonitor(Config{Window: 8, MinSamples: 2, Threshold: 0.5})
	defer m.Close()
	ingestN(t, m, "neusight", 3, 10)
	rep := m.Report()
	var b strings.Builder
	WriteMetrics(&b, &rep)
	out := b.String()
	for _, want := range []string{
		"neusight_observe_ingested_total 3",
		"neusight_observe_drift_threshold 0.5",
		`neusight_observe_mape{engine="neusight",gpu="H100"}`,
		`neusight_observe_drifting{engine="neusight",gpu="H100"} 1`,
		`neusight_observe_retrainable{engine="neusight",gpu="H100"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
	var none strings.Builder
	WriteMetrics(&none, nil)
	if none.Len() != 0 {
		t.Fatalf("nil report exported %q, want nothing", none.String())
	}
}
