package observe

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

// PredictFunc resolves the serving engine's current prediction for a
// kernel, in milliseconds. The serve layer wires this to its own serving
// path, so observation-triggered predictions ride the same cache,
// coalescing, and counters as client traffic.
type PredictFunc func(ctx context.Context, engine string, k kernels.Kernel, g gpu.Spec) (float64, error)

// RetrainFunc folds a calibration set (observed latencies, in the same
// millisecond unit the engine predicts) back into an engine's trained
// state and returns the engine's generation after the swap. It runs on
// the monitor's single background worker and may take seconds.
type RetrainFunc func(calib []dataset.Sample) (generation uint64, err error)

// Defaults for Config's zero values.
const (
	DefaultWindow     = 256
	DefaultMinSamples = 32
	DefaultThreshold  = 0.25
)

// Config tunes a Monitor. Zero values take the defaults above.
type Config struct {
	// Window is the per-(engine, GPU) rolling window size: how many of the
	// newest observations the drift MAPE is computed over.
	Window int
	// MinSamples is the minimum window occupancy before drift can trigger
	// a retrain — a handful of outliers must not churn the model.
	MinSamples int
	// Threshold is the rolling-MAPE level above which a retrainable
	// engine's calibration retrain fires (0.25 = 25% mean error).
	Threshold float64
	// Store, when non-nil, persists every accepted observation. The
	// monitor takes ownership: Close closes it.
	Store *Store
}

// point is one accepted observation held in a drift window.
type point struct {
	k        kernels.Kernel
	g        gpu.Spec
	observed float64
	pred     float64
}

// window is the rolling drift state for one (engine, GPU) pair.
type window struct {
	engine  string
	gpuName string
	ring    []point
	next    int
	total   uint64 // observations ever ingested into this window
}

// push appends p, evicting the oldest past the cap.
func (w *window) push(p point, cap int) {
	if len(w.ring) < cap {
		w.ring = append(w.ring, p)
	} else {
		w.ring[w.next] = p
		w.next = (w.next + 1) % len(w.ring)
	}
	w.total++
}

// mape is the mean absolute percentage error of predictions vs
// observations over the window's current contents.
func (w *window) mape() float64 {
	if len(w.ring) == 0 {
		return 0
	}
	var sum float64
	for _, p := range w.ring {
		sum += math.Abs(p.observed-p.pred) / p.observed
	}
	return sum / float64(len(w.ring))
}

// engineDrift is per-engine retrain bookkeeping, shared by all of the
// engine's (engine, GPU) windows.
type engineDrift struct {
	retrains uint64
	lastGen  uint64
	lastErr  string
}

// Monitor ingests measured kernel latencies, tracks prediction drift per
// (engine, GPU), and schedules single-flight background retrains for
// engines with a registered retrainer. Safe for concurrent use.
type Monitor struct {
	cfg     Config
	predict PredictFunc

	mu         sync.Mutex
	windows    map[string]*window // key: engine + "|" + gpu
	retrainers map[string]RetrainFunc
	engines    map[string]*engineDrift
	closed     bool

	ingested      atomic.Uint64
	rejected      atomic.Uint64
	retrains      atomic.Uint64
	retrainErrors atomic.Uint64
	retrainActive atomic.Bool

	wg sync.WaitGroup
}

// NewMonitor builds a monitor over cfg. predict must be non-nil.
func NewMonitor(cfg Config, predict PredictFunc) *Monitor {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = DefaultMinSamples
	}
	if cfg.MinSamples > cfg.Window {
		cfg.MinSamples = cfg.Window
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultThreshold
	}
	return &Monitor{
		cfg:        cfg,
		predict:    predict,
		windows:    map[string]*window{},
		retrainers: map[string]RetrainFunc{},
		engines:    map[string]*engineDrift{},
	}
}

// RegisterRetrainer marks engine as retrainable: when its drift crosses
// the threshold, fn runs on the background worker with the engine's
// accumulated calibration set. Engines without a retrainer are tracked
// alert-only — observations are accepted and drift is reported, but no
// retrain is ever scheduled.
func (m *Monitor) RegisterRetrainer(engine string, fn RetrainFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retrainers[engine] = fn
}

// Ingest accepts one measured latency for (engine, k, g): it resolves the
// engine's current prediction, pushes the (observed, predicted) pair into
// the (engine, GPU) drift window, persists the observation, and — if the
// window's MAPE now exceeds the threshold with at least MinSamples
// samples and the engine is retrainable — starts the background retrain,
// unless one is already in flight (single-flight: concurrent drift on
// many windows coalesces into one worker).
//
// The engine name must be resolved (non-empty) by the caller. A
// non-positive or non-finite observation, or a prediction failure
// (unknown engine, saturated shard), rejects the observation.
func (m *Monitor) Ingest(ctx context.Context, engine string, k kernels.Kernel, g gpu.Spec, observedMs float64) error {
	if err := m.ingest(ctx, engine, k, g, observedMs, true); err != nil {
		return err
	}
	if st := m.cfg.Store; st != nil {
		// Persistence is best-effort: a full disk must not take ingestion
		// (and with it drift detection) down.
		st.Append(NewRecord(engine, k, g.Name, observedMs))
	}
	return nil
}

// ingest implements Ingest minus persistence; trigger=false (store
// replay) rebuilds windows without scheduling retrains.
func (m *Monitor) ingest(ctx context.Context, engine string, k kernels.Kernel, g gpu.Spec, observedMs float64, trigger bool) error {
	if engine == "" {
		m.rejected.Add(1)
		return fmt.Errorf("observe: empty engine")
	}
	if !(observedMs > 0) || math.IsInf(observedMs, 0) {
		m.rejected.Add(1)
		return fmt.Errorf("observe: observed_ms must be a positive finite number, got %v", observedMs)
	}
	pred, err := m.predict(ctx, engine, k, g)
	if err != nil {
		m.rejected.Add(1)
		return err
	}

	m.mu.Lock()
	key := engine + "|" + g.Name
	w := m.windows[key]
	if w == nil {
		w = &window{engine: engine, gpuName: g.Name}
		m.windows[key] = w
	}
	w.push(point{k: k, g: g, observed: observedMs, pred: pred}, m.cfg.Window)
	m.ingested.Add(1)

	if trigger && !m.closed &&
		len(w.ring) >= m.cfg.MinSamples && w.mape() > m.cfg.Threshold {
		if fn := m.retrainers[engine]; fn != nil && m.retrainActive.CompareAndSwap(false, true) {
			calib := m.calibrationSetLocked(engine)
			m.wg.Add(1)
			go m.retrain(engine, fn, calib)
		}
	}
	m.mu.Unlock()
	return nil
}

// calibrationSetLocked gathers every window of engine into a calibration
// set: the observed latency becomes the sample's ground truth. Callers
// hold m.mu.
func (m *Monitor) calibrationSetLocked(engine string) []dataset.Sample {
	var calib []dataset.Sample
	for _, w := range m.windows {
		if w.engine != engine {
			continue
		}
		for _, p := range w.ring {
			calib = append(calib, dataset.Sample{Kernel: p.k, GPU: p.g, Latency: p.observed})
		}
	}
	return calib
}

// retrain runs one background calibration retrain. On success the
// engine's windows reset — drift is measured against the new model from
// scratch, and the MinSamples refill doubles as a retrain cooldown.
func (m *Monitor) retrain(engine string, fn RetrainFunc, calib []dataset.Sample) {
	defer m.wg.Done()
	defer m.retrainActive.Store(false)
	gen, err := fn(calib)

	m.mu.Lock()
	defer m.mu.Unlock()
	ed := m.engines[engine]
	if ed == nil {
		ed = &engineDrift{}
		m.engines[engine] = ed
	}
	if err != nil {
		m.retrainErrors.Add(1)
		ed.lastErr = err.Error()
		return
	}
	m.retrains.Add(1)
	ed.retrains++
	ed.lastGen = gen
	ed.lastErr = ""
	for _, w := range m.windows {
		if w.engine == engine {
			w.ring = w.ring[:0]
			w.next = 0
		}
	}
}

// ReplayStore re-seeds the drift windows from the persisted observation
// store — after a restart the monitor resumes with the drift state it had,
// instead of blind windows. Records that no longer resolve (unknown op,
// GPU, or engine in this build) are skipped and counted; no retrain is
// triggered during replay. Call before serving traffic.
func (m *Monitor) ReplayStore(ctx context.Context) (replayed, skipped int) {
	st := m.cfg.Store
	if st == nil {
		return 0, 0
	}
	for _, rec := range st.Records() {
		k, err := rec.Kernel()
		if err != nil {
			skipped++
			continue
		}
		g, err := gpu.Lookup(rec.GPU)
		if err != nil {
			skipped++
			continue
		}
		if m.ingest(ctx, rec.Engine, k, g, rec.ObservedMs, false) != nil {
			skipped++
			continue
		}
		replayed++
	}
	return replayed, skipped
}

// Close stops scheduling retrains and waits for an in-flight retrain to
// finish, then closes the store (if any).
func (m *Monitor) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.wg.Wait()
	if m.cfg.Store != nil {
		return m.cfg.Store.Close()
	}
	return nil
}

// WindowReport is the drift state of one (engine, GPU) pair.
type WindowReport struct {
	Engine  string `json:"engine"`
	GPU     string `json:"gpu"`
	Samples int    `json:"samples"` // observations currently in the window
	Total   uint64 `json:"total"`   // observations ever ingested
	// MAPE is the rolling mean absolute percentage error of predictions vs
	// observations over the window.
	MAPE float64 `json:"mape"`
	// Drifting reports MAPE above the threshold — visible before the
	// MinSamples bar for retraining is met.
	Drifting    bool `json:"drifting"`
	Retrainable bool `json:"retrainable"`
	// Retrains and LastRetrainGeneration are engine-level: calibration
	// retrains completed and the engine generation after the last one.
	Retrains              uint64 `json:"retrains,omitempty"`
	LastRetrainGeneration uint64 `json:"last_retrain_generation,omitempty"`
	LastError             string `json:"last_error,omitempty"`
}

// Report is the monitor's drift report, exposed under the "observe"
// section of /v2/stats.
type Report struct {
	Ingested      uint64         `json:"ingested"`
	Rejected      uint64         `json:"rejected"`
	WindowSize    int            `json:"window_size"`
	MinSamples    int            `json:"min_samples"`
	Threshold     float64        `json:"threshold"`
	Retrains      uint64         `json:"retrains"`
	RetrainErrors uint64         `json:"retrain_errors,omitempty"`
	RetrainActive bool           `json:"retrain_active"`
	Windows       []WindowReport `json:"windows,omitempty"`
	Store         *StoreStats    `json:"store,omitempty"`
}

// Report snapshots the monitor's drift state. Windows are sorted by
// (engine, GPU) for stable output.
func (m *Monitor) Report() Report {
	rep := Report{
		Ingested:      m.ingested.Load(),
		Rejected:      m.rejected.Load(),
		WindowSize:    m.cfg.Window,
		MinSamples:    m.cfg.MinSamples,
		Threshold:     m.cfg.Threshold,
		Retrains:      m.retrains.Load(),
		RetrainErrors: m.retrainErrors.Load(),
		RetrainActive: m.retrainActive.Load(),
	}
	m.mu.Lock()
	for _, w := range m.windows {
		mape := w.mape()
		wr := WindowReport{
			Engine:      w.engine,
			GPU:         w.gpuName,
			Samples:     len(w.ring),
			Total:       w.total,
			MAPE:        mape,
			Drifting:    mape > m.cfg.Threshold,
			Retrainable: m.retrainers[w.engine] != nil,
		}
		if ed := m.engines[w.engine]; ed != nil {
			wr.Retrains = ed.retrains
			wr.LastRetrainGeneration = ed.lastGen
			wr.LastError = ed.lastErr
		}
		rep.Windows = append(rep.Windows, wr)
	}
	m.mu.Unlock()
	sort.Slice(rep.Windows, func(i, j int) bool {
		if rep.Windows[i].Engine != rep.Windows[j].Engine {
			return rep.Windows[i].Engine < rep.Windows[j].Engine
		}
		return rep.Windows[i].GPU < rep.Windows[j].GPU
	})
	if st := m.cfg.Store; st != nil {
		ss := st.Stats()
		rep.Store = &ss
	}
	return rep
}
