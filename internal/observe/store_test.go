package observe

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"neusight/internal/kernels"
)

func testRecord(i int) Record {
	return NewRecord("neusight", kernels.NewBMM(1, 64+i, 64, 64), "H100", float64(i+1))
}

func fileLineCount(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Count(string(data), "\n")
}

func TestStoreAppendCloseReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	st, err := OpenStore(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recs := st2.Records()
	if len(recs) != 5 {
		t.Fatalf("reopened with %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.ObservedMs != float64(i+1) {
			t.Fatalf("record %d observed %v, want %v (order lost)", i, r.ObservedMs, i+1)
		}
		if _, err := r.Kernel(); err != nil {
			t.Fatalf("record %d does not round-trip: %v", i, err)
		}
	}
}

// An accepted observation must survive a kill: every Append flushes
// through to the file, so reopening the path without ever closing the
// first handle — the closest a test gets to SIGKILL — sees every record.
func TestStoreReopenAfterKill(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	st, err := OpenStore(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the process "died" here.
	st2, err := OpenStore(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := len(st2.Records()); got != 7 {
		t.Fatalf("%d records survived the kill, want 7", got)
	}
}

func TestStoreSkipsCorruptLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	var b strings.Builder
	b.WriteString(`{"engine":"neusight","gpu":"H100","op":"bmm","b":1,"m":64,"k":64,"n":64,"observed_ms":1}` + "\n")
	b.WriteString("not json at all\n")                                 // garbage
	b.WriteString(`{"engine":"neusight","gpu":"H100","op":"bmm","obs`) // truncated mid-line
	b.WriteString("\n")
	b.WriteString(`{"engine":"","gpu":"H100","op":"bmm","observed_ms":1}` + "\n")  // no engine
	b.WriteString(`{"engine":"e","gpu":"H100","op":"bmm","observed_ms":0}` + "\n") // non-positive
	b.WriteString("\n")                                                            // blank lines are framing, not damage
	b.WriteString(`{"engine":"neusight","gpu":"H100","op":"bmm","b":1,"m":65,"k":64,"n":64,"observed_ms":2}` + "\n")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats := st.Stats()
	if stats.Records != 2 {
		t.Fatalf("loaded %d records, want 2", stats.Records)
	}
	if stats.Skipped != 4 {
		t.Fatalf("skipped %d corrupt lines, want 4", stats.Skipped)
	}
	// The damaged file was rewritten: only the valid lines remain on disk,
	// so a later kill cannot resurrect the corruption.
	if got := fileLineCount(t, path); got != 2 {
		t.Fatalf("file holds %d lines after corrupt-load rewrite, want 2", got)
	}
}

func TestStoreCapEvictsOldest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	st, err := OpenStore(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 10; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	recs := st.Records()
	if len(recs) != 4 {
		t.Fatalf("store holds %d records, want cap 4", len(recs))
	}
	for i, r := range recs {
		if want := float64(7 + i); r.ObservedMs != want {
			t.Fatalf("record %d observed %v, want %v (not the newest four)", i, r.ObservedMs, want)
		}
	}
	if st.Stats().Evicted != 6 {
		t.Fatalf("evicted %d, want 6", st.Stats().Evicted)
	}
}

func TestStoreCompactionBoundsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	st, err := OpenStore(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.Compactions == 0 {
		t.Fatal("40 appends past a cap of 4 never compacted")
	}
	if got := fileLineCount(t, path); got >= 2*4+1 {
		t.Fatalf("file holds %d lines, want < %d (compaction bounds disk)", got, 2*4+1)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recs := st2.Records()
	if len(recs) != 4 || recs[3].ObservedMs != 40 {
		t.Fatalf("reopen after compaction: %d records, newest %v; want 4 records ending at 40",
			len(recs), recs[len(recs)-1].ObservedMs)
	}
}

// A crash between writing the temporary compaction file and the rename
// leaves path+".compact.tmp" behind; the main file is authoritative and
// the leftover must be discarded, not replayed.
func TestStoreDiscardsCrashedCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obs.jsonl")
	st, err := OpenStore(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	tmp := path + ".compact.tmp"
	if err := os.WriteFile(tmp, []byte("torn half-written compac"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := len(st2.Records()); got != 3 {
		t.Fatalf("%d records after crashed compaction, want 3 from the main file", got)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover %s not discarded (stat err %v)", tmp, err)
	}
}

func TestStoreOverfullFilePrunedAtOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	var b strings.Builder
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&b, `{"engine":"neusight","gpu":"H100","op":"bmm","b":1,"m":64,"k":64,"n":64,"observed_ms":%d}`+"\n", i+1)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs := st.Records()
	if len(recs) != 4 || recs[0].ObservedMs != 9 {
		t.Fatalf("pruned to %d records starting at %v, want newest 4 starting at 9",
			len(recs), recs[0].ObservedMs)
	}
	if got := fileLineCount(t, path); got != 4 {
		t.Fatalf("file holds %d lines after prune, want 4", got)
	}
}

func TestRecordKernelRoundTrip(t *testing.T) {
	k := kernels.NewBMM(2, 128, 64, 32).WithDType(kernels.FP16)
	r := NewRecord("neusight", k, "V100", 1.5)
	got, err := r.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	if got.Label() != k.Label() {
		t.Fatalf("round-trip %s != %s", got.Label(), k.Label())
	}
	if _, err := (Record{Op: "no-such-op"}).Kernel(); err == nil {
		t.Fatal("unknown op must not resolve")
	}
	if _, err := (Record{Op: "bmm", DType: "fp8"}).Kernel(); err == nil {
		t.Fatal("unknown dtype must not resolve")
	}
}
