// Package metrics provides the evaluation statistics the paper reports:
// absolute percentage error per prediction and its mean over a set (the
// "percentage error" used throughout Section 6), plus SMAPE for training
// diagnostics.
package metrics

import "math"

// APE returns the absolute percentage error of pred against measured, in
// percent: |pred - measured| / measured * 100.
func APE(pred, measured float64) float64 {
	if measured == 0 {
		if pred == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(pred-measured) / math.Abs(measured) * 100
}

// SMAPE returns the symmetric absolute percentage error in percent.
func SMAPE(pred, measured float64) float64 {
	den := (math.Abs(pred) + math.Abs(measured)) / 2
	if den == 0 {
		return 0
	}
	return math.Abs(pred-measured) / den * 100
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MAPE returns the mean APE over paired slices, in percent.
func MAPE(preds, measured []float64) float64 {
	if len(preds) != len(measured) {
		panic("metrics: length mismatch")
	}
	errs := make([]float64, len(preds))
	for i := range preds {
		errs[i] = APE(preds[i], measured[i])
	}
	return Mean(errs)
}
