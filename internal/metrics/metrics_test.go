package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAPE(t *testing.T) {
	if got := APE(110, 100); math.Abs(got-10) > 1e-12 {
		t.Fatalf("APE = %v, want 10", got)
	}
	if got := APE(50, 100); math.Abs(got-50) > 1e-12 {
		t.Fatalf("APE = %v, want 50", got)
	}
	if got := APE(0, 0); got != 0 {
		t.Fatalf("APE(0,0) = %v, want 0", got)
	}
	if got := APE(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("APE(1,0) = %v, want +Inf", got)
	}
}

func TestSMAPESymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e150 || math.Abs(b) > 1e150 {
			return true // intermediate sums overflow beyond float64 range
		}
		return math.Abs(SMAPE(a, b)-SMAPE(b, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if got := SMAPE(0, 0); got != 0 {
		t.Fatalf("SMAPE(0,0) = %v", got)
	}
}

func TestMeanMax(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Max([]float64{3, 9, 2}); got != 9 {
		t.Fatalf("Max = %v", got)
	}
	if got := Max(nil); got != 0 {
		t.Fatalf("Max(nil) = %v", got)
	}
}

func TestMAPE(t *testing.T) {
	got := MAPE([]float64{110, 90}, []float64{100, 100})
	if math.Abs(got-10) > 1e-12 {
		t.Fatalf("MAPE = %v, want 10", got)
	}
}

func TestMAPELengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MAPE([]float64{1}, []float64{1, 2})
}
