// Package graph is the dataflow IR standing in for Torch.fx capture (paper
// Section 5): a DAG of kernels with the metadata NeuSight records per node —
// operator type and tensor dimensions. It also derives training graphs
// (forward + backward kernels) and implements the operator-fusion pass of
// Section 4.4.
package graph

import (
	"fmt"

	"neusight/internal/kernels"
)

// Node is one kernel instance in the dataflow graph.
type Node struct {
	ID     int
	Kernel kernels.Kernel
	Deps   []int // IDs of nodes whose outputs this node consumes
}

// Graph is a DAG of kernels. Nodes are stored in insertion order, which is
// required to be a valid topological order (Add enforces it).
type Graph struct {
	Name  string
	Nodes []*Node
}

// New returns an empty graph.
func New(name string) *Graph { return &Graph{Name: name} }

// Add appends a kernel depending on the given earlier nodes and returns its
// ID. Dependencies must reference already-added nodes, keeping insertion
// order topological by construction.
func (g *Graph) Add(k kernels.Kernel, deps ...int) int {
	id := len(g.Nodes)
	for _, d := range deps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("graph: node %d depends on invalid node %d", id, d))
		}
	}
	g.Nodes = append(g.Nodes, &Node{ID: id, Kernel: k, Deps: append([]int(nil), deps...)})
	return id
}

// Kernels returns the kernels in topological (insertion) order.
func (g *Graph) Kernels() []kernels.Kernel {
	ks := make([]kernels.Kernel, len(g.Nodes))
	for i, n := range g.Nodes {
		ks[i] = n.Kernel
	}
	return ks
}

// TotalFLOPs sums FLOPs over all nodes.
func (g *Graph) TotalFLOPs() float64 {
	s := 0.0
	for _, n := range g.Nodes {
		s += n.Kernel.FLOPs()
	}
	return s
}

// TotalBytes sums memory traffic over all nodes.
func (g *Graph) TotalBytes() float64 {
	s := 0.0
	for _, n := range g.Nodes {
		s += n.Kernel.MemBytes()
	}
	return s
}

// Latency aggregates per-kernel latencies under the paper's sequential-
// execution assumption (Section 2.2): kernels execute one after another on
// the device, so the graph latency is the sum.
func (g *Graph) Latency(kernelLatency func(kernels.Kernel) float64) float64 {
	s := 0.0
	for _, n := range g.Nodes {
		s += kernelLatency(n.Kernel)
	}
	return s
}

// LatencyByCategory decomposes Latency by predictor category (paper
// Table 6's breakdown).
func (g *Graph) LatencyByCategory(kernelLatency func(kernels.Kernel) float64) map[kernels.Category]float64 {
	out := map[kernels.Category]float64{}
	for _, n := range g.Nodes {
		out[n.Kernel.Category()] += kernelLatency(n.Kernel)
	}
	return out
}

// CountByCategory tallies node counts per predictor category.
func (g *Graph) CountByCategory() map[kernels.Category]int {
	out := map[kernels.Category]int{}
	for _, n := range g.Nodes {
		out[n.Kernel.Category()]++
	}
	return out
}

// Consumers returns, for each node ID, the IDs of nodes that consume it.
func (g *Graph) Consumers() [][]int {
	cons := make([][]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, d := range n.Deps {
			cons[d] = append(cons[d], n.ID)
		}
	}
	return cons
}

// Validate checks the graph invariants: IDs are dense, deps point backwards.
func (g *Graph) Validate() error {
	for i, n := range g.Nodes {
		if n.ID != i {
			return fmt.Errorf("graph %q: node at index %d has ID %d", g.Name, i, n.ID)
		}
		for _, d := range n.Deps {
			if d < 0 || d >= i {
				return fmt.Errorf("graph %q: node %d has forward/invalid dep %d", g.Name, i, d)
			}
		}
	}
	return nil
}

// WithDType returns a copy of the graph with every kernel at precision d.
func (g *Graph) WithDType(d kernels.DType) *Graph {
	out := New(g.Name + "/" + d.String())
	for _, n := range g.Nodes {
		out.Add(n.Kernel.WithDType(d), n.Deps...)
	}
	return out
}
