package graph

import "neusight/internal/kernels"

// Fuse applies the operator-fusion pass of paper Section 4.4, emulating
// torch.compile's behavior on the patterns the paper calls out:
//
//   - a GEMM (Linear or BMM) folds a following elementwise epilogue —
//     activation functions and residual adds (the extra residual operand
//     becomes an epilogue input);
//   - consecutive elementwise kernels fuse into one;
//   - an elementwise kernel fuses with a following layer normalization
//     (the GPT-2 residual-add + layernorm example).
//
// A producer fuses only when it has exactly one consumer (otherwise its
// output must materialize anyway); the consumer may read additional inputs.
// Chains fuse greedily left to right. The fused kernel accumulates FLOPs
// and drops intermediate traffic via kernels.Fuse.
func Fuse(g *Graph) *Graph {
	cons := g.Consumers()
	out := New(g.Name + "/fused")
	newID := make([]int, len(g.Nodes))
	fusedInto := make([]int, len(g.Nodes)) // -1: not fused away
	for i := range fusedInto {
		fusedInto[i] = -1
	}

	for i := 0; i < len(g.Nodes); i++ {
		if fusedInto[i] >= 0 {
			continue
		}
		head := g.Nodes[i]
		var chain []kernels.Kernel
		members := map[int]bool{head.ID: true}
		extraDeps := []int{}
		cur := head
		for {
			c := cons[cur.ID]
			if len(c) != 1 {
				break
			}
			next := g.Nodes[c[0]]
			if fusedInto[next.ID] >= 0 || !fusable(cur.Kernel, next.Kernel) {
				break
			}
			chain = append(chain, next.Kernel)
			members[next.ID] = true
			fusedInto[next.ID] = head.ID
			// Epilogue operands beyond the fused intermediate (e.g. the
			// residual tensor of a fused add) stay inputs of the fused node.
			for _, d := range next.Deps {
				if !members[d] {
					extraDeps = append(extraDeps, d)
				}
			}
			cur = next
		}
		k := head.Kernel
		if len(chain) > 0 {
			k = kernels.Fuse(head.Kernel, chain...)
		}
		deps := remapDeps(append(append([]int{}, head.Deps...), extraDeps...), newID, fusedInto)
		newID[head.ID] = out.Add(k, deps...)
		// Nodes fused into head resolve to head's new ID for consumers.
		for j := i + 1; j < len(g.Nodes); j++ {
			if fusedInto[j] == head.ID {
				newID[j] = newID[head.ID]
			}
		}
	}
	return out
}

// fusable reports whether consumer b may fold into producer a as an
// epilogue.
func fusable(a, b kernels.Kernel) bool {
	ac, bc := a.Category(), b.Category()
	switch {
	case (ac == kernels.CatBMM || ac == kernels.CatLinear) && bc == kernels.CatElementwise:
		return true
	case ac == kernels.CatElementwise && bc == kernels.CatElementwise:
		return true
	case ac == kernels.CatElementwise && bc == kernels.CatLayerNorm:
		return true
	default:
		return false
	}
}

func remapDeps(deps []int, newID, fusedInto []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, d := range deps {
		// Follow fusion chains to the surviving head.
		for fusedInto[d] >= 0 {
			d = fusedInto[d]
		}
		nd := newID[d]
		if !seen[nd] {
			seen[nd] = true
			out = append(out, nd)
		}
	}
	return out
}
