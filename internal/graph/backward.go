package graph

import "neusight/internal/kernels"

// Backward derives the training graph for a forward graph: the forward
// kernels followed by the backward kernels of each differentiable node in
// reverse order. The per-iteration training latency the paper reports is
// "a single forward and backward pass" (Section 6.1), so no optimizer-step
// kernels are emitted.
//
// Backward cost rules follow standard framework behavior:
//
//	Linear (X@W):  two GEMMs — dX = dY@Wᵀ and dW = Xᵀ@dY — each with the
//	               forward GEMM's FLOP count.
//	BMM (A@B):     two BMMs — dA = dY@Bᵀ, dB = Aᵀ@dY.
//	Elementwise:   one elementwise kernel of the same size.
//	Softmax:       one softmax-shaped kernel (y*(g - Σyg) is the same
//	               traffic/flop class as the forward).
//	LayerNorm:     one layernorm-shaped kernel.
//	Embedding:     one scatter-add gather of the same size (memory-bound).
//	Dropout/Transpose: one kernel of the same size.
//
// Network kernels (collectives) are skipped; distributed transforms insert
// their own gradient collectives.
func Backward(fwd *Graph) *Graph {
	out := New(fwd.Name + "/train")
	for _, n := range fwd.Nodes {
		out.Add(n.Kernel, n.Deps...)
	}
	// Backward kernels chain sequentially after the forward pass in
	// reverse node order.
	prev := len(out.Nodes) - 1
	for i := len(fwd.Nodes) - 1; i >= 0; i-- {
		for _, bk := range backwardKernels(fwd.Nodes[i].Kernel) {
			deps := []int{}
			if prev >= 0 {
				deps = append(deps, prev)
			}
			prev = out.Add(bk, deps...)
		}
	}
	return out
}

// backwardKernels returns the kernels a framework launches to backpropagate
// through k.
func backwardKernels(k kernels.Kernel) []kernels.Kernel {
	d := k.DType
	switch k.Op {
	case kernels.OpLinear:
		// dX: (M x N) @ (N x K); dW: (K x M) @ (M x N).
		return []kernels.Kernel{
			kernels.NewLinear(k.M, k.N, k.K).WithDType(d),
			kernels.NewLinear(k.K, k.M, k.N).WithDType(d),
		}
	case kernels.OpBMM:
		return []kernels.Kernel{
			kernels.NewBMM(k.B, k.M, k.N, k.K).WithDType(d),
			kernels.NewBMM(k.B, k.K, k.M, k.N).WithDType(d),
		}
	case kernels.OpEWAdd, kernels.OpEWMul, kernels.OpEWDiv,
		kernels.OpEWReLU, kernels.OpEWGELU, kernels.OpEWTanh,
		kernels.OpDropout, kernels.OpTranspose:
		return []kernels.Kernel{{Op: k.Op, B: k.B, M: k.M, DType: d}}
	case kernels.OpSoftmax:
		return []kernels.Kernel{kernels.NewSoftmax(k.B, k.M).WithDType(d)}
	case kernels.OpLayerNorm:
		return []kernels.Kernel{kernels.NewLayerNorm(k.B, k.M).WithDType(d)}
	case kernels.OpConv2D:
		// dX: the transposed convolution (M x N)@(N x K); dW: (K x M)@(M x N).
		// Both stay implicit GEMMs of the forward's FLOP count.
		return []kernels.Kernel{
			{Op: kernels.OpConv2D, B: 1, M: k.M, K: k.N, N: k.K, DType: d, ConvInputElems: float64(k.M) * float64(k.N)},
			{Op: kernels.OpConv2D, B: 1, M: k.K, K: k.M, N: k.N, DType: d, ConvInputElems: float64(k.K) * float64(k.M)},
		}
	case kernels.OpEmbedding:
		return []kernels.Kernel{{Op: kernels.OpEmbedding, B: k.B, M: k.M, K: k.K, DType: d}}
	case kernels.OpAllReduce, kernels.OpSendRecv:
		return nil
	default:
		return []kernels.Kernel{{Op: k.Op, B: k.B, M: k.M, DType: d}}
	}
}
