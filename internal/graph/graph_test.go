package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"neusight/internal/kernels"
)

func chainGraph() *Graph {
	g := New("chain")
	a := g.Add(kernels.NewLinear(512, 1024, 1024))
	b := g.Add(kernels.NewElementwise(kernels.OpEWGELU, 512, 1024), a)
	g.Add(kernels.NewLinear(512, 1024, 1024), b)
	return g
}

func TestAddAndValidate(t *testing.T) {
	g := chainGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(g.Nodes))
	}
}

func TestAddForwardDepPanics(t *testing.T) {
	g := New("bad")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on forward dependency")
		}
	}()
	g.Add(kernels.NewSoftmax(4, 4), 0) // depends on itself
}

func TestLatencyIsSequentialSum(t *testing.T) {
	g := chainGraph()
	lat := g.Latency(func(k kernels.Kernel) float64 { return 2.5 })
	if lat != 7.5 {
		t.Fatalf("Latency = %v, want 7.5 (3 kernels x 2.5)", lat)
	}
}

func TestTotalsAndCategories(t *testing.T) {
	g := chainGraph()
	var wantF, wantB float64
	for _, k := range g.Kernels() {
		wantF += k.FLOPs()
		wantB += k.MemBytes()
	}
	if g.TotalFLOPs() != wantF || g.TotalBytes() != wantB {
		t.Fatal("totals disagree with per-kernel sums")
	}
	counts := g.CountByCategory()
	if counts[kernels.CatLinear] != 2 || counts[kernels.CatElementwise] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	byCat := g.LatencyByCategory(func(k kernels.Kernel) float64 { return 1 })
	if byCat[kernels.CatLinear] != 2 {
		t.Fatalf("latency by category = %v", byCat)
	}
}

func TestConsumers(t *testing.T) {
	g := New("diamond")
	a := g.Add(kernels.NewLinear(4, 4, 4))
	b := g.Add(kernels.NewElementwise(kernels.OpEWReLU, 4, 4), a)
	c := g.Add(kernels.NewElementwise(kernels.OpEWTanh, 4, 4), a)
	g.Add(kernels.NewElementwise(kernels.OpEWAdd, 4, 4), b, c)
	cons := g.Consumers()
	if len(cons[a]) != 2 {
		t.Fatalf("node a consumers = %v, want 2", cons[a])
	}
	if len(cons[3]) != 0 {
		t.Fatal("sink must have no consumers")
	}
}

func TestBackwardDoublesGEMMs(t *testing.T) {
	fwd := New("fc")
	fwd.Add(kernels.NewLinear(512, 1024, 2048))
	train := Backward(fwd)
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1 forward + 2 backward GEMMs.
	if got := train.CountByCategory()[kernels.CatLinear]; got != 3 {
		t.Fatalf("linear kernels = %d, want 3", got)
	}
	// Backward FLOPs ≈ 2x forward for GEMMs.
	fwdF := fwd.TotalFLOPs()
	if r := train.TotalFLOPs() / fwdF; r < 2.9 || r > 3.1 {
		t.Fatalf("train/fwd FLOP ratio = %v, want ~3", r)
	}
}

func TestBackwardBMMDims(t *testing.T) {
	fwd := New("bmm")
	fwd.Add(kernels.NewBMM(8, 128, 64, 256))
	train := Backward(fwd)
	if len(train.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(train.Nodes))
	}
	dA, dB := train.Nodes[1].Kernel, train.Nodes[2].Kernel
	if dA.M != 128 || dA.K != 256 || dA.N != 64 {
		t.Fatalf("dA dims = %+v, want (M=128, K=256, N=64)", dA)
	}
	if dB.M != 64 || dB.K != 128 || dB.N != 256 {
		t.Fatalf("dB dims = %+v, want (M=64, K=128, N=256)", dB)
	}
	// Both backward BMMs match the forward FLOP count.
	if dA.FLOPs() != fwd.Nodes[0].Kernel.FLOPs() || dB.FLOPs() != fwd.Nodes[0].Kernel.FLOPs() {
		t.Fatal("backward BMM FLOPs should equal forward")
	}
}

func TestBackwardElementwiseAndNorms(t *testing.T) {
	fwd := New("mix")
	a := fwd.Add(kernels.NewElementwise(kernels.OpEWAdd, 2048, 1280))
	b := fwd.Add(kernels.NewLayerNorm(2048, 1280), a)
	fwd.Add(kernels.NewSoftmax(2048, 2048), b)
	train := Backward(fwd)
	counts := train.CountByCategory()
	if counts[kernels.CatElementwise] != 2 || counts[kernels.CatLayerNorm] != 2 || counts[kernels.CatSoftmax] != 2 {
		t.Fatalf("counts = %v, want each category doubled", counts)
	}
}

func TestBackwardSkipsNetworkOps(t *testing.T) {
	fwd := New("net")
	fwd.Add(kernels.NewAllReduce(1 << 20))
	train := Backward(fwd)
	if len(train.Nodes) != 1 {
		t.Fatalf("network ops must not get backward kernels, got %d nodes", len(train.Nodes))
	}
}

// Property: Backward output is always a valid DAG and never shrinks.
func TestBackwardValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := New("rand")
		prev := -1
		for i := 0; i < 1+r.Intn(20); i++ {
			var k kernels.Kernel
			switch r.Intn(5) {
			case 0:
				k = kernels.NewBMM(1+r.Intn(8), 1+r.Intn(512), 1+r.Intn(512), 1+r.Intn(512))
			case 1:
				k = kernels.NewLinear(1+r.Intn(512), 1+r.Intn(512), 1+r.Intn(512))
			case 2:
				k = kernels.NewElementwise(kernels.OpEWAdd, 1+r.Intn(512), 1+r.Intn(512))
			case 3:
				k = kernels.NewSoftmax(1+r.Intn(512), 1+r.Intn(512))
			default:
				k = kernels.NewLayerNorm(1+r.Intn(512), 1+r.Intn(512))
			}
			if prev >= 0 {
				prev = g.Add(k, prev)
			} else {
				prev = g.Add(k)
			}
		}
		train := Backward(g)
		return train.Validate() == nil && len(train.Nodes) >= len(g.Nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFuseResidualAddLayerNorm(t *testing.T) {
	g := New("gpt2-block-tail")
	a := g.Add(kernels.NewElementwise(kernels.OpEWAdd, 2048, 1280))
	g.Add(kernels.NewLayerNorm(2048, 1280), a)
	fused := Fuse(g)
	if len(fused.Nodes) != 1 {
		t.Fatalf("fused nodes = %d, want 1", len(fused.Nodes))
	}
	k := fused.Nodes[0].Kernel
	if !k.Fused || k.Op != kernels.OpEWAdd {
		t.Fatalf("fused kernel = %+v, want EWAdd-headed fusion", k)
	}
	if k.FLOPs() != g.TotalFLOPs() {
		t.Fatal("fusion must accumulate FLOPs")
	}
	if k.MemBytes() >= g.TotalBytes() {
		t.Fatal("fusion must drop intermediate traffic")
	}
}

func TestFuseGEMMActivation(t *testing.T) {
	g := New("ffn")
	a := g.Add(kernels.NewLinear(2048, 1280, 5120))
	g.Add(kernels.NewElementwise(kernels.OpEWGELU, 2048, 5120), a)
	fused := Fuse(g)
	if len(fused.Nodes) != 1 {
		t.Fatalf("fused nodes = %d, want 1", len(fused.Nodes))
	}
	if fused.Nodes[0].Kernel.Category() != kernels.CatLinear {
		t.Fatal("GEMM+activation must stay in the Linear category")
	}
}

func TestFuseRespectsFanOut(t *testing.T) {
	// The producer feeds two consumers: fusion must not fire.
	g := New("fanout")
	a := g.Add(kernels.NewElementwise(kernels.OpEWAdd, 128, 128))
	g.Add(kernels.NewLayerNorm(128, 128), a)
	g.Add(kernels.NewElementwise(kernels.OpEWReLU, 128, 128), a)
	fused := Fuse(g)
	if len(fused.Nodes) != 3 {
		t.Fatalf("fused nodes = %d, want 3 (fan-out blocks fusion)", len(fused.Nodes))
	}
}

func TestFuseChainOfElementwise(t *testing.T) {
	g := New("ewchain")
	a := g.Add(kernels.NewElementwise(kernels.OpEWAdd, 1024, 1024))
	b := g.Add(kernels.NewElementwise(kernels.OpEWMul, 1024, 1024), a)
	g.Add(kernels.NewElementwise(kernels.OpEWTanh, 1024, 1024), b)
	fused := Fuse(g)
	if len(fused.Nodes) != 1 {
		t.Fatalf("fused nodes = %d, want 1", len(fused.Nodes))
	}
	if got := fused.Nodes[0].Kernel.FLOPs(); got != g.TotalFLOPs() {
		t.Fatalf("fused FLOPs = %v, want %v", got, g.TotalFLOPs())
	}
}

func TestFuseDoesNotCrossGEMMBoundary(t *testing.T) {
	// EW then Linear: no fusion rule allows EW -> GEMM.
	g := New("nofuse")
	a := g.Add(kernels.NewElementwise(kernels.OpEWAdd, 512, 512))
	g.Add(kernels.NewLinear(512, 512, 512), a)
	fused := Fuse(g)
	if len(fused.Nodes) != 2 {
		t.Fatalf("fused nodes = %d, want 2", len(fused.Nodes))
	}
}

// Property: fusion preserves total FLOPs exactly, never increases traffic,
// and yields a valid graph.
func TestFusePreservesWorkProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := New("rand")
		prev := -1
		for i := 0; i < 1+r.Intn(25); i++ {
			var k kernels.Kernel
			switch r.Intn(5) {
			case 0:
				k = kernels.NewLinear(8+r.Intn(512), 8+r.Intn(512), 8+r.Intn(512))
			case 1:
				k = kernels.NewElementwise(kernels.OpEWAdd, 8+r.Intn(2048), 8+r.Intn(2048))
			case 2:
				k = kernels.NewElementwise(kernels.OpEWGELU, 8+r.Intn(2048), 8+r.Intn(2048))
			case 3:
				k = kernels.NewLayerNorm(8+r.Intn(2048), 8+r.Intn(2048))
			default:
				k = kernels.NewSoftmax(8+r.Intn(2048), 8+r.Intn(2048))
			}
			if prev >= 0 && r.Intn(4) > 0 {
				prev = g.Add(k, prev)
			} else {
				prev = g.Add(k)
			}
		}
		fused := Fuse(g)
		if fused.Validate() != nil {
			return false
		}
		if fused.TotalFLOPs() != g.TotalFLOPs() {
			return false
		}
		return fused.TotalBytes() <= g.TotalBytes() && len(fused.Nodes) <= len(g.Nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWithDType(t *testing.T) {
	g := chainGraph()
	h := g.WithDType(kernels.FP16)
	if h.TotalBytes()*2 != g.TotalBytes() {
		t.Fatal("fp16 graph should have half the traffic")
	}
	if h.TotalFLOPs() != g.TotalFLOPs() {
		t.Fatal("precision must not change FLOPs")
	}
}
