// Package kernels defines the DNN operator taxonomy and its cost accounting.
// A Kernel is what the paper calls a "DNN kernel": a tensor operator (GEMM,
// Add, Softmax, ...) executed atomically on the device (Section 2.2). Each
// kernel knows its FLOP count, memory traffic, and output dimensions — the
// three quantities every predictor in the framework consumes.
package kernels

import (
	"fmt"
	"strings"
)

// Op identifies the operator computed by a kernel.
type Op int

// Operator types. The five categories with dedicated NeuSight predictors
// (paper Section 4.3) are BMM, Linear, the EW* group, Softmax, and
// LayerNorm; everything else falls back to the memory-bound estimate.
const (
	OpBMM Op = iota
	OpLinear
	OpEWAdd
	OpEWMul
	OpEWDiv
	OpEWReLU
	OpEWGELU
	OpEWTanh
	OpSoftmax
	OpLayerNorm
	OpEmbedding
	OpDropout
	OpTranspose
	OpAllReduce // network collective, sized by tensor bytes
	OpSendRecv  // network point-to-point
	OpConv2D    // 2D convolution lowered to implicit GEMM (see conv.go)
	OpPool      // pooling, memory-bound
)

var opNames = map[Op]string{
	OpBMM: "bmm", OpLinear: "linear",
	OpEWAdd: "ew_add", OpEWMul: "ew_mul", OpEWDiv: "ew_div",
	OpEWReLU: "ew_relu", OpEWGELU: "ew_gelu", OpEWTanh: "ew_tanh",
	OpSoftmax: "softmax", OpLayerNorm: "layernorm",
	OpEmbedding: "embedding", OpDropout: "dropout", OpTranspose: "transpose",
	OpAllReduce: "allreduce", OpSendRecv: "sendrecv",
	OpConv2D: "conv2d", OpPool: "pool",
}

// String returns the canonical lowercase name.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// opsByName inverts opNames for parsing serialized kernels (workload
// traces, API payloads) back into operators.
var opsByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// OpByName returns the operator with the given canonical name (the one
// String renders), reporting false for names no registered operator has.
// It is the stable textual encoding for persisted kernels: traces written
// by one build replay in another even if the Op constants are renumbered.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

// Category groups operators by which predictor handles them.
type Category int

// Predictor categories (paper Section 4.3: "five MLPs to predict the
// utilization for BMM, fully-connected layers, element-wise operators,
// softmax, and layer normalization").
const (
	CatBMM Category = iota
	CatLinear
	CatElementwise
	CatSoftmax
	CatLayerNorm
	CatMemoryBound // unseen ops: latency = bytes / memBW
	CatNetwork     // collectives, handled by the network model
)

var catNames = map[Category]string{
	CatBMM: "BMM", CatLinear: "FC", CatElementwise: "EW",
	CatSoftmax: "Softmax", CatLayerNorm: "LN",
	CatMemoryBound: "Others", CatNetwork: "Network",
}

// String returns the short label used in the paper's figures.
func (c Category) String() string { return catNames[c] }

// Categorize maps an operator to its predictor category.
func Categorize(o Op) Category {
	switch o {
	case OpBMM:
		return CatBMM
	case OpLinear, OpConv2D:
		// Convolutions execute as implicit GEMM and route to the
		// fully-connected predictor.
		return CatLinear
	case OpEWAdd, OpEWMul, OpEWDiv, OpEWReLU, OpEWGELU, OpEWTanh:
		return CatElementwise
	case OpSoftmax:
		return CatSoftmax
	case OpLayerNorm:
		return CatLayerNorm
	case OpAllReduce, OpSendRecv:
		return CatNetwork
	default:
		return CatMemoryBound
	}
}

// DType is the numeric precision of a kernel's tensors.
type DType int

// Supported precisions.
const (
	FP32 DType = iota
	FP16
)

// Bytes returns the element size.
func (d DType) Bytes() float64 {
	if d == FP16 {
		return 2
	}
	return 4
}

// String names the precision.
func (d DType) String() string {
	if d == FP16 {
		return "fp16"
	}
	return "fp32"
}

// Kernel is one tensor operator with concrete dimensions.
//
// Dimension semantics by op:
//
//	BMM:        B batched (M x K) @ (K x N)
//	Linear:     M rows (batch*seq) through a K -> N layer; B unused (1)
//	EW binary:  B x M elements in two operands (K, N unused)
//	EW unary:   B x M elements (K, N unused)
//	Softmax/LN: B rows of M elements
//	Embedding:  B tokens gathered into M-wide vectors from a K-row table
//	AllReduce/SendRecv: B x M element tensor moved over the network
type Kernel struct {
	Op         Op
	B, M, K, N int
	DType      DType

	// Fusion metadata (paper Section 4.4): a fused kernel accumulates the
	// FLOPs of all fused ops but drops intermediate memory traffic. When
	// Fused is true, FusedFLOPs/FusedBytes replace the derived values.
	Fused      bool
	FusedFLOPs float64
	FusedBytes float64
	FusedOps   []Op

	// ConvInputElems is the real input-tensor element count of an OpConv2D
	// kernel (batch*Cin*H*W) — the implicit-GEMM lowering reads it instead
	// of the im2col expansion.
	ConvInputElems float64
}

// elements returns the output element count.
func (k Kernel) elements() float64 { return float64(k.B) * float64(k.M) }

// flopFactor is the per-element flop cost of non-GEMM ops, approximating
// the instruction mix of each operator.
var flopFactor = map[Op]float64{
	OpEWAdd: 1, OpEWMul: 1, OpEWDiv: 1, OpEWReLU: 1,
	OpEWGELU: 8, OpEWTanh: 4,
	OpSoftmax: 5, OpLayerNorm: 8,
	OpEmbedding: 0, OpDropout: 1, OpTranspose: 0, OpPool: 1,
	OpAllReduce: 0, OpSendRecv: 0,
}

// FLOPs returns the floating-point operation count of the kernel.
func (k Kernel) FLOPs() float64 {
	if k.Fused {
		return k.FusedFLOPs
	}
	switch k.Op {
	case OpBMM:
		return 2 * float64(k.B) * float64(k.M) * float64(k.K) * float64(k.N)
	case OpLinear, OpConv2D:
		// 2*M*K*N matmul plus M*N bias adds.
		return 2*float64(k.M)*float64(k.K)*float64(k.N) + float64(k.M)*float64(k.N)
	default:
		return k.elements() * flopFactor[k.Op]
	}
}

// MemBytes returns the off-chip memory traffic of the kernel: operand reads
// plus result writes, assuming on-chip reuse within the kernel.
func (k Kernel) MemBytes() float64 {
	if k.Fused {
		return k.FusedBytes
	}
	s := k.DType.Bytes()
	switch k.Op {
	case OpBMM:
		return s * float64(k.B) * (float64(k.M)*float64(k.K) + float64(k.K)*float64(k.N) + float64(k.M)*float64(k.N))
	case OpLinear:
		return s * (float64(k.M)*float64(k.K) + float64(k.K)*float64(k.N) + float64(k.N) + float64(k.M)*float64(k.N))
	case OpConv2D:
		// Implicit GEMM reuses overlapping patches on chip: input traffic
		// is the real tensor, not the im2col expansion.
		return s * (k.ConvInputElems + float64(k.K)*float64(k.N) + float64(k.M)*float64(k.N))
	case OpEWAdd, OpEWMul, OpEWDiv:
		return s * 3 * k.elements() // two reads, one write
	case OpEWReLU, OpEWGELU, OpEWTanh, OpDropout, OpTranspose:
		return s * 2 * k.elements()
	case OpSoftmax, OpLayerNorm:
		return s * 2 * k.elements()
	case OpEmbedding:
		// Gather of B rows of M floats plus index reads.
		return s*k.elements() + 4*float64(k.B)
	case OpAllReduce, OpSendRecv:
		return s * k.elements()
	default:
		return s * 2 * k.elements()
	}
}

// ArithmeticIntensity returns FLOPs per byte (paper Eq. 1's K).
func (k Kernel) ArithmeticIntensity() float64 {
	b := k.MemBytes()
	if b == 0 {
		return 0
	}
	return k.FLOPs() / b
}

// OutputDims returns the logical output tensor dimensions that the tiler
// partitions (paper Eq. 2's x_i).
func (k Kernel) OutputDims() []int {
	switch k.Op {
	case OpBMM:
		return []int{k.B, k.M, k.N}
	case OpLinear, OpConv2D:
		return []int{k.M, k.N}
	case OpSoftmax, OpLayerNorm:
		return []int{k.B, k.M}
	case OpEmbedding:
		return []int{k.B, k.M}
	default:
		return []int{k.B, k.M}
	}
}

// Category returns which predictor handles this kernel.
func (k Kernel) Category() Category { return Categorize(k.Op) }

// Label renders a compact human-readable description.
func (k Kernel) Label() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", k.Op)
	switch k.Op {
	case OpBMM:
		fmt.Fprintf(&b, "[%dx(%dx%d@%dx%d)]", k.B, k.M, k.K, k.K, k.N)
	case OpLinear, OpConv2D:
		fmt.Fprintf(&b, "[%dx%d->%d]", k.M, k.K, k.N)
	default:
		fmt.Fprintf(&b, "[%dx%d]", k.B, k.M)
	}
	if k.DType == FP16 {
		b.WriteString("/fp16")
	}
	if k.Fused {
		names := make([]string, len(k.FusedOps))
		for i, o := range k.FusedOps {
			names[i] = o.String()
		}
		fmt.Fprintf(&b, "+fused(%s)", strings.Join(names, ","))
	}
	return b.String()
}
