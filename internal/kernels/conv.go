package kernels

import "fmt"

// Conv2DShape carries the full convolution geometry. The kernel itself is
// lowered to an implicit GEMM the way cuDNN/CUTLASS execute it (im2col):
// M = batch*Hout*Wout output positions, K = Cin*Kh*Kw patch elements,
// N = Cout filters. The paper treats GEMM as the core building block of
// convolution layers (Section 4.1), and the implicit-GEMM lowering is what
// routes CONV kernels to the fully-connected predictor.
type Conv2DShape struct {
	Batch, Cin, H, W int
	Cout, Kh, Kw     int
	Stride, Pad      int
}

// OutHW returns the output spatial dimensions.
func (s Conv2DShape) OutHW() (int, int) {
	oh := (s.H+2*s.Pad-s.Kh)/s.Stride + 1
	ow := (s.W+2*s.Pad-s.Kw)/s.Stride + 1
	return oh, ow
}

// NewConv2D builds a 2D convolution kernel lowered to implicit GEMM.
func NewConv2D(s Conv2DShape) Kernel {
	mustPositive("Conv2D", s.Batch, s.Cin, s.H, s.W, s.Cout, s.Kh, s.Kw, s.Stride)
	if s.Pad < 0 {
		panic(fmt.Sprintf("kernels: Conv2D negative padding %d", s.Pad))
	}
	oh, ow := s.OutHW()
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("kernels: Conv2D output collapses to %dx%d", oh, ow))
	}
	return Kernel{
		Op: OpConv2D,
		B:  1,
		M:  s.Batch * oh * ow,
		K:  s.Cin * s.Kh * s.Kw,
		N:  s.Cout,

		ConvInputElems: float64(s.Batch) * float64(s.Cin) * float64(s.H) * float64(s.W),
	}
}

// NewPool2D builds a pooling kernel over batch x channels x H x W inputs
// with the given window/stride. Pooling is memory-bound (a windowed copy).
func NewPool2D(batch, channels, h, w, window, stride int) Kernel {
	mustPositive("Pool2D", batch, channels, h, w, window, stride)
	oh := (h-window)/stride + 1
	ow := (w-window)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic("kernels: Pool2D output collapses")
	}
	return Kernel{Op: OpPool, B: batch * channels, M: oh * ow}
}
