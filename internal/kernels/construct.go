package kernels

import "fmt"

// NewBMM builds a batched matrix multiplication: b batches of (m x k)@(k x n).
func NewBMM(b, m, k, n int) Kernel {
	mustPositive("BMM", b, m, k, n)
	return Kernel{Op: OpBMM, B: b, M: m, K: k, N: n}
}

// NewLinear builds a fully-connected layer: rows samples through in -> out.
func NewLinear(rows, in, out int) Kernel {
	mustPositive("Linear", rows, in, out)
	return Kernel{Op: OpLinear, B: 1, M: rows, K: in, N: out}
}

// NewElementwise builds an elementwise op over rows x cols elements.
func NewElementwise(op Op, rows, cols int) Kernel {
	if Categorize(op) != CatElementwise {
		panic(fmt.Sprintf("kernels: %v is not elementwise", op))
	}
	mustPositive("Elementwise", rows, cols)
	return Kernel{Op: op, B: rows, M: cols}
}

// NewSoftmax builds a softmax over rows independent vectors of length cols.
func NewSoftmax(rows, cols int) Kernel {
	mustPositive("Softmax", rows, cols)
	return Kernel{Op: OpSoftmax, B: rows, M: cols}
}

// NewLayerNorm builds a layer normalization over rows vectors of length cols.
func NewLayerNorm(rows, cols int) Kernel {
	mustPositive("LayerNorm", rows, cols)
	return Kernel{Op: OpLayerNorm, B: rows, M: cols}
}

// NewEmbedding builds a table gather of tokens rows of width hidden from a
// vocab-row table.
func NewEmbedding(tokens, hidden, vocab int) Kernel {
	mustPositive("Embedding", tokens, hidden, vocab)
	return Kernel{Op: OpEmbedding, B: tokens, M: hidden, K: vocab}
}

// NewAllReduce builds a ring all-reduce over a tensor of elems elements.
func NewAllReduce(elems int) Kernel {
	mustPositive("AllReduce", elems)
	return Kernel{Op: OpAllReduce, B: elems, M: 1}
}

// NewSendRecv builds a point-to-point transfer of elems elements.
func NewSendRecv(elems int) Kernel {
	mustPositive("SendRecv", elems)
	return Kernel{Op: OpSendRecv, B: elems, M: 1}
}

// WithDType returns a copy of k at the given precision.
func (k Kernel) WithDType(d DType) Kernel {
	k.DType = d
	return k
}

// Fuse merges k with the following ops per the paper's fusion rule
// (Section 4.4): FLOPs accumulate, intermediate tensors' memory traffic is
// discarded, and tiling metadata comes from the first operator. The fused
// kernel keeps k's op type so it routes to k's predictor.
func Fuse(first Kernel, rest ...Kernel) Kernel {
	if len(rest) == 0 {
		return first
	}
	fused := first
	fused.Fused = true
	fused.FusedFLOPs = first.FLOPs()
	fused.FusedBytes = first.MemBytes()
	fused.FusedOps = []Op{}
	s := first.DType.Bytes()
	for _, r := range rest {
		fused.FusedFLOPs += r.FLOPs()
		// The intermediate produced by the previous op and consumed by r
		// stays on chip: subtract one tensor write and one read.
		inter := s * first.elementsForFusion()
		fused.FusedBytes += r.MemBytes() - 2*inter
		if fused.FusedBytes < s*first.elementsForFusion() {
			fused.FusedBytes = s * first.elementsForFusion()
		}
		fused.FusedOps = append(fused.FusedOps, r.Op)
	}
	return fused
}

// elementsForFusion is the intermediate tensor size flowing between fused
// ops: the output elements of the first kernel.
func (k Kernel) elementsForFusion() float64 {
	switch k.Op {
	case OpBMM:
		return float64(k.B) * float64(k.M) * float64(k.N)
	case OpLinear:
		return float64(k.M) * float64(k.N)
	default:
		return k.elements()
	}
}

func mustPositive(op string, dims ...int) {
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("kernels: %s requires positive dimensions, got %v", op, dims))
		}
	}
}
