package kernels

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBMMAccounting(t *testing.T) {
	k := NewBMM(4, 128, 64, 256)
	if got, want := k.FLOPs(), 2.0*4*128*64*256; got != want {
		t.Fatalf("FLOPs = %v, want %v", got, want)
	}
	if got, want := k.MemBytes(), 4.0*4*(128*64+64*256+128*256); got != want {
		t.Fatalf("MemBytes = %v, want %v", got, want)
	}
	dims := k.OutputDims()
	if len(dims) != 3 || dims[0] != 4 || dims[1] != 128 || dims[2] != 256 {
		t.Fatalf("OutputDims = %v", dims)
	}
}

func TestLinearAccounting(t *testing.T) {
	k := NewLinear(512, 1024, 4096)
	want := 2.0*512*1024*4096 + 512*4096
	if got := k.FLOPs(); got != want {
		t.Fatalf("FLOPs = %v, want %v", got, want)
	}
	if k.Category() != CatLinear {
		t.Fatalf("Category = %v", k.Category())
	}
}

func TestElementwiseAccounting(t *testing.T) {
	add := NewElementwise(OpEWAdd, 1024, 512)
	if got, want := add.FLOPs(), 1024.0*512; got != want {
		t.Fatalf("add FLOPs = %v, want %v", got, want)
	}
	if got, want := add.MemBytes(), 3.0*4*1024*512; got != want {
		t.Fatalf("add MemBytes = %v, want %v", got, want)
	}
	gelu := NewElementwise(OpEWGELU, 1024, 512)
	if gelu.FLOPs() <= add.FLOPs() {
		t.Fatal("GELU should cost more flops per element than add")
	}
	if got, want := gelu.MemBytes(), 2.0*4*1024*512; got != want {
		t.Fatalf("gelu MemBytes = %v, want %v (unary: one read one write)", got, want)
	}
}

func TestNewElementwiseRejectsNonEW(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-elementwise op")
		}
	}()
	NewElementwise(OpSoftmax, 4, 4)
}

func TestNonPositiveDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dimension")
		}
	}()
	NewBMM(0, 1, 1, 1)
}

func TestFP16HalvesMemory(t *testing.T) {
	k32 := NewBMM(1, 256, 256, 256)
	k16 := k32.WithDType(FP16)
	if k16.MemBytes()*2 != k32.MemBytes() {
		t.Fatalf("fp16 bytes %v, fp32 bytes %v", k16.MemBytes(), k32.MemBytes())
	}
	if k16.FLOPs() != k32.FLOPs() {
		t.Fatal("precision must not change FLOP count")
	}
	if k16.ArithmeticIntensity() != 2*k32.ArithmeticIntensity() {
		t.Fatal("fp16 should double arithmetic intensity")
	}
}

func TestCategorization(t *testing.T) {
	cases := map[Op]Category{
		OpBMM: CatBMM, OpLinear: CatLinear,
		OpEWAdd: CatElementwise, OpEWGELU: CatElementwise,
		OpSoftmax: CatSoftmax, OpLayerNorm: CatLayerNorm,
		OpEmbedding: CatMemoryBound, OpDropout: CatMemoryBound,
		OpAllReduce: CatNetwork, OpSendRecv: CatNetwork,
	}
	for op, want := range cases {
		if got := Categorize(op); got != want {
			t.Errorf("Categorize(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestFuseAccumulatesFLOPsDropsIntermediates(t *testing.T) {
	// Residual add fused with layernorm, the paper's GPT-2 example.
	add := NewElementwise(OpEWAdd, 2048, 1280)
	ln := NewLayerNorm(2048, 1280)
	fused := Fuse(add, ln)

	if fused.Op != OpEWAdd {
		t.Fatal("fused kernel must keep the first op's type for predictor routing")
	}
	if got, want := fused.FLOPs(), add.FLOPs()+ln.FLOPs(); got != want {
		t.Fatalf("fused FLOPs = %v, want %v", got, want)
	}
	if fused.MemBytes() >= add.MemBytes()+ln.MemBytes() {
		t.Fatal("fusion must reduce memory traffic")
	}
	if fused.MemBytes() < 4*2048*1280 {
		t.Fatal("fused traffic cannot drop below one tensor")
	}
	if !strings.Contains(fused.Label(), "fused") {
		t.Fatalf("Label = %q should mention fusion", fused.Label())
	}
}

func TestFuseGEMMWithActivation(t *testing.T) {
	lin := NewLinear(2048, 1280, 5120)
	gelu := NewElementwise(OpEWGELU, 2048, 5120)
	fused := Fuse(lin, gelu)
	if fused.Category() != CatLinear {
		t.Fatal("GEMM+activation must route to the Linear predictor")
	}
	if got, want := fused.FLOPs(), lin.FLOPs()+gelu.FLOPs(); got != want {
		t.Fatalf("FLOPs = %v, want %v", got, want)
	}
	if fused.MemBytes() >= lin.MemBytes()+gelu.MemBytes() {
		t.Fatal("fusion must reduce traffic")
	}
}

func TestFuseNoRestIsIdentity(t *testing.T) {
	k := NewSoftmax(128, 128)
	if f := Fuse(k); f.Fused {
		t.Fatal("Fuse with no rest should return the kernel unchanged")
	}
}

// Property: FLOPs and MemBytes are positive and scale monotonically in B for
// every constructible op.
func TestCostsPositiveAndMonotonicProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b, m, k, n := 1+r.Intn(64), 1+r.Intn(512), 1+r.Intn(512), 1+r.Intn(512)
		ks := []Kernel{
			NewBMM(b, m, k, n),
			NewLinear(m, k, n),
			NewElementwise(OpEWAdd, b, m),
			NewSoftmax(b, m),
			NewLayerNorm(b, m),
			NewEmbedding(b, m, 50257),
		}
		for _, kern := range ks {
			if kern.MemBytes() <= 0 {
				return false
			}
			if kern.Op != OpEmbedding && kern.FLOPs() <= 0 {
				return false
			}
		}
		// Doubling the batch must not decrease cost.
		big := NewBMM(2*b, m, k, n)
		return big.FLOPs() > ks[0].FLOPs() && big.MemBytes() > ks[0].MemBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: arithmetic intensity of a square GEMM grows with its dimension
// (the roofline's compute-bound transition).
func TestIntensityGrowsWithGEMMSize(t *testing.T) {
	prev := 0.0
	for _, n := range []int{64, 128, 256, 512, 1024, 2048} {
		ai := NewBMM(1, n, n, n).ArithmeticIntensity()
		if ai <= prev {
			t.Fatalf("intensity not increasing at n=%d: %v <= %v", n, ai, prev)
		}
		prev = ai
	}
}

func TestLabelFormats(t *testing.T) {
	if got := NewBMM(2, 3, 4, 5).Label(); got != "bmm[2x(3x4@4x5)]" {
		t.Fatalf("Label = %q", got)
	}
	if got := NewLinear(10, 20, 30).Label(); got != "linear[10x20->30]" {
		t.Fatalf("Label = %q", got)
	}
	if got := NewBMM(1, 2, 2, 2).WithDType(FP16).Label(); !strings.Contains(got, "fp16") {
		t.Fatalf("Label = %q should mention fp16", got)
	}
}

func TestNetworkKernels(t *testing.T) {
	ar := NewAllReduce(1 << 20)
	if ar.MemBytes() != 4*(1<<20) {
		t.Fatalf("allreduce bytes = %v", ar.MemBytes())
	}
	if ar.Category() != CatNetwork {
		t.Fatal("allreduce must be a network kernel")
	}
}
