package experiments

import (
	"context"
	"fmt"
	"sort"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/metrics"
	"neusight/internal/models"
	"neusight/internal/predict"
)

// workload is one (model, batch) evaluation point of Figure 7.
type workload struct {
	Model models.Config
	Batch int
}

// fig7Workloads returns the paper's per-model batch sizes (Section 6.2 /
// Table 6 use small generation batches for the large models and larger
// batches for BERT).
func fig7Workloads() []workload {
	batches := map[string][]int{
		"BERT-Large":  {8, 16},
		"GPT2-Large":  {4, 8},
		"GPT3-XL":     {2, 4},
		"OPT-1.3B":    {2, 4},
		"GPT3-2.7B":   {2, 4},
		"SwitchTrans": {4, 8},
	}
	var out []workload
	for _, c := range models.Table5() {
		for _, b := range batches[c.Name] {
			out = append(out, workload{Model: c, Batch: b})
		}
	}
	return out
}

// fig7GPUs is the 8-device NVIDIA evaluation set.
func fig7GPUs() []gpu.Spec {
	names := []string{"P4", "P100", "V100", "T4", "A100-40GB", "A100-80GB", "L4", "H100"}
	out := make([]gpu.Spec, len(names))
	for i, n := range names {
		out[i] = gpu.MustLookup(n)
	}
	return out
}

// Fig7 reproduces Figure 7: end-to-end inference (a) and training (b)
// latency prediction error of NeuSight and the baselines across models,
// batch sizes, and GPUs. OOM combinations are omitted as in the paper.
// Summary rows report the mean error per predictor overall and restricted
// to out-of-distribution GPUs.
func Fig7(lab *Lab) []*Table {
	var tables []*Table
	for _, training := range []bool{false, true} {
		id, title := "fig7a", "Inference latency prediction percentage error"
		if training {
			id, title = "fig7b", "Training latency prediction percentage error"
		}
		t := &Table{ID: id, Title: title}
		t.Columns = []string{"Model", "Batch", "GPU", "Measured (ms)"}
		for _, p := range lab.Engines() {
			t.Columns = append(t.Columns, p.Name())
		}

		all := map[string][]float64{}  // predictor -> errors
		oodG := map[string][]float64{} // predictor -> errors on unseen GPUs
		for _, w := range fig7Workloads() {
			gr := w.Model.InferenceGraph(w.Batch)
			if training {
				gr = w.Model.TrainingGraph(w.Batch)
			}
			ks := gr.Kernels()
			for _, g := range fig7GPUs() {
				if !w.Model.FitsInMemory(w.Batch, g, training) {
					continue // paper: "models resulting in OOM are omitted"
				}
				measured := lab.MeasureGraph(ks, g)
				row := []string{w.Model.Name, fmt.Sprintf("%d", w.Batch), labelGPU(g), ms(measured)}
				for _, p := range lab.Engines() {
					pred := PredictGraphWith(p, ks, g)
					e := metrics.APE(pred, measured)
					row = append(row, pct(e))
					all[p.Name()] = append(all[p.Name()], e)
					if isOODGPU(g) {
						oodG[p.Name()] = append(oodG[p.Name()], e)
					}
				}
				t.Rows = append(t.Rows, row)
			}
		}
		avgRow := []string{"AVERAGE", "", "", ""}
		oodRow := []string{"AVERAGE (OOD GPUs)", "", "", ""}
		maxRow := []string{"MAX (OOD GPUs)", "", "", ""}
		for _, p := range lab.Engines() {
			avgRow = append(avgRow, pct(metrics.Mean(all[p.Name()])))
			oodRow = append(oodRow, pct(metrics.Mean(oodG[p.Name()])))
			maxRow = append(maxRow, pct(metrics.Max(oodG[p.Name()])))
		}
		t.Rows = append(t.Rows, avgRow, oodRow, maxRow)
		tables = append(tables, t)
	}
	return tables
}

func isOODGPU(g gpu.Spec) bool {
	for _, t := range gpu.TestSet() {
		if t.Name == g.Name {
			return true
		}
	}
	return false
}

// fig8Categories is the presentation order of Figure 8.
var fig8Categories = []kernels.Category{
	kernels.CatBMM, kernels.CatLinear, kernels.CatElementwise,
	kernels.CatSoftmax, kernels.CatLayerNorm,
}

// Fig8 reproduces Figure 8: per-operator-type prediction error averaged
// over the Figure 7 workloads, split in-distribution vs out-of-distribution
// GPUs.
func Fig8(lab *Lab) *Table {
	t := &Table{
		ID:    "fig8",
		Title: "Per-operator prediction percentage error (in-dist / OOD GPUs)",
	}
	t.Columns = []string{"Operator"}
	for _, p := range lab.Engines() {
		t.Columns = append(t.Columns, p.Name()+" (in)", p.Name()+" (OOD)")
	}

	type key struct {
		pred string
		cat  kernels.Category
		ood  bool
	}
	errs := map[key][]float64{}
	ctx := context.Background()
	// One representative batch per model keeps the sweep affordable while
	// covering every operator shape.
	for _, w := range fig7Workloads()[:len(fig7Workloads())] {
		ks := uniqueKernels(w.Model.InferenceGraph(w.Batch).Kernels())
		for _, g := range fig7GPUs() {
			if !w.Model.FitsInMemory(w.Batch, g, false) {
				continue
			}
			for _, k := range ks {
				cat := k.Category()
				if !isFig8Cat(cat) {
					continue
				}
				measured := lab.Sim.KernelLatency(k, g)
				for _, p := range lab.Engines() {
					res, err := p.PredictKernel(ctx, predict.Request{Kernel: k, GPU: g})
					if err != nil {
						continue
					}
					errs[key{p.Name(), cat, isOODGPU(g)}] = append(errs[key{p.Name(), cat, isOODGPU(g)}], metrics.APE(res.Latency, measured))
				}
			}
		}
	}
	for _, cat := range fig8Categories {
		row := []string{cat.String()}
		for _, p := range lab.Engines() {
			row = append(row,
				pct(metrics.Mean(errs[key{p.Name(), cat, false}])),
				pct(metrics.Mean(errs[key{p.Name(), cat, true}])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func isFig8Cat(c kernels.Category) bool {
	for _, f := range fig8Categories {
		if c == f {
			return true
		}
	}
	return false
}

// uniqueKernels deduplicates repeated per-layer kernels by label.
func uniqueKernels(ks []kernels.Kernel) []kernels.Kernel {
	seen := map[string]bool{}
	var out []kernels.Kernel
	for _, k := range ks {
		l := k.Label()
		if !seen[l] {
			seen[l] = true
			out = append(out, k)
		}
	}
	return out
}

// Table6 reproduces Table 6: the contribution of each operator type to
// end-to-end inference latency on H100.
func Table6(lab *Lab) *Table {
	t := &Table{
		ID:      "table6",
		Title:   "Per-operator contribution to H100 inference latency",
		Columns: []string{"Model", "Batch Size", "BMM", "LINEAR", "EW", "SOFTMAX", "LN", "OTHERS"},
	}
	h100 := gpu.MustLookup("H100")
	rows := []workload{
		{models.MustLookup("BERT-Large"), 16},
		{models.MustLookup("GPT2-Large"), 4},
		{models.MustLookup("OPT-1.3B"), 2},
		{models.MustLookup("GPT3-XL"), 2},
	}
	for _, w := range rows {
		gr := w.Model.InferenceGraph(w.Batch)
		byCat := gr.LatencyByCategory(func(k kernels.Kernel) float64 {
			return lab.Sim.KernelLatency(k, h100)
		})
		total := 0.0
		cats := make([]kernels.Category, 0, len(byCat))
		for c, v := range byCat {
			total += v
			cats = append(cats, c)
		}
		sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
		share := func(c kernels.Category) string { return pct(byCat[c] / total * 100) }
		others := byCat[kernels.CatMemoryBound] / total * 100
		t.AddRow(w.Model.Name, fmt.Sprintf("%d", w.Batch),
			share(kernels.CatBMM), share(kernels.CatLinear), share(kernels.CatElementwise),
			share(kernels.CatSoftmax), share(kernels.CatLayerNorm), pct(others))
	}
	return t
}
