// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on top of the simulated substrate. Each experiment
// is a function from a trained Lab to one or more Tables; cmd/experiments
// renders them as markdown and CSV, and bench_test.go wraps each in a
// testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string // e.g. "fig7a"
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ",") + "\n")
	for _, r := range t.Rows {
		quoted := make([]string, len(r))
		for i, c := range r {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		b.WriteString(strings.Join(quoted, ",") + "\n")
	}
	return b.String()
}

// pct formats a percentage-error cell.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// ms formats a latency cell.
func ms(v float64) string { return fmt.Sprintf("%.1f", v) }
