package experiments

import (
	"context"
	"fmt"

	"neusight/internal/baselines"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/metrics"
	"neusight/internal/predict"
)

// fig2GPUs are the devices of Figure 2's grid, training GPUs first, the
// out-of-distribution devices last.
func fig2GPUs() []gpu.Spec {
	names := []string{"P100", "V100", "T4", "A100-40GB", "A100-80GB", "L4", "H100"}
	out := make([]gpu.Spec, len(names))
	for i, n := range names {
		out[i] = gpu.MustLookup(n)
	}
	return out
}

// fig2Dims are the square BMM sizes swept in Figure 2; sizes above 1024 are
// out of distribution.
var fig2Dims = []int{128, 256, 512, 1024, 2048, 4096}

// Fig2 reproduces Figure 2: prediction error of the prior-work approaches
// (Habitat's MLP, Li et al.'s regression) on BMM across dimensions and
// GPUs. Returns one table per sub-figure.
func Fig2(lab *Lab) []*Table {
	habitat := &Table{ID: "fig2a", Title: "Habitat (MLP) percentage error on BMM; * marks out-of-distribution"}
	li := &Table{ID: "fig2b", Title: "Li et al. (linear regression) percentage error on BMM; * marks out-of-distribution"}
	cols := []string{"BMM dim"}
	for _, g := range fig2GPUs() {
		cols = append(cols, labelGPU(g))
	}
	habitat.Columns = cols
	li.Columns = cols

	ctx := context.Background()
	hEng := lab.Engine(predict.EngineHabitat)
	lEng := lab.Engine(predict.EngineLiRegression)
	for _, d := range fig2Dims {
		label := fmt.Sprintf("%d", d)
		if d > 1024 {
			label += "*"
		}
		hRow := []string{label}
		lRow := []string{label}
		k := kernels.NewBMM(8, d, d, d)
		for _, g := range fig2GPUs() {
			measured := lab.Sim.KernelLatency(k, g)
			req := predict.Request{Kernel: k, GPU: g}
			hp, err := hEng.PredictKernel(ctx, req)
			must(err)
			lp, err := lEng.PredictKernel(ctx, req)
			must(err)
			hRow = append(hRow, pct(metrics.APE(hp.Latency, measured)))
			lRow = append(lRow, pct(metrics.APE(lp.Latency, measured)))
		}
		habitat.Rows = append(habitat.Rows, hRow)
		li.Rows = append(li.Rows, lRow)
	}
	return []*Table{habitat, li}
}

// Table1 reproduces Table 1: scaling up direct-regression predictors (MLPs
// with more layers, transformers) still fails out of distribution. Models
// train on BMMs with dims < 1024 and evaluate on dims up to 4096.
func Table1(lab *Lab) *Table {
	t := &Table{
		ID:    "table1",
		Title: "Larger direct predictors on BMM latency (percentage error)",
		Columns: []string{
			"Predictor Architecture", "Number of layers",
			"In-distribution Error (%)", "Out-of-distribution Error (%)",
		},
	}
	train := lab.Data.FilterCategory(kernels.CatBMM)

	inDist := dataset.Generate(dataset.GenConfig{
		Seed: lab.Cfg.Seed + 11, BMM: scaled(lab, 80),
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, lab.Sim, nil)
	ood := dataset.Generate(dataset.GenConfig{
		Seed: lab.Cfg.Seed + 12, BMM: scaled(lab, 80),
		GPUs: gpu.TestSet(), MaxBMMDim: 4096,
	}, lab.Sim, nil)

	ctx := context.Background()
	evalOn := func(e predict.Engine, d *dataset.Dataset) float64 {
		var errs []float64
		for _, s := range d.Samples {
			res, err := e.PredictKernel(ctx, predict.Request{Kernel: s.Kernel, GPU: s.GPU})
			must(err)
			errs = append(errs, metrics.APE(res.Latency, s.Latency))
		}
		return metrics.Mean(errs)
	}

	// The study's predictors ride the same engine contract as the standard
	// set: each trained candidate is wrapped and evaluated identically.
	type candidate struct {
		arch   string
		layers int
		eng    predict.Engine
	}
	var cands []candidate
	for _, layers := range []int{8, 16} {
		cfg := lab.Cfg.Habitat
		cfg.Layers = layers
		cfg.Seed = lab.Cfg.Seed + int64(layers)
		m := baselines.NewDirectMLP(cfg)
		m.Train(train.Samples)
		cands = append(cands, candidate{"MLP", layers, predict.NewDirectMLPEngine(m)})
	}
	for _, layers := range []int{3, 6} {
		cfg := lab.Cfg.Habitat
		cfg.Seed = lab.Cfg.Seed + 100 + int64(layers)
		// Transformers train sample-by-sample in pure Go; cap the budget
		// at the point where in-distribution error matches the paper's
		// ~20-25% band.
		cfg.Epochs = maxInt(8, cfg.Epochs*2/3)
		tr := baselines.NewDirectTransformer(cfg, layers)
		sub := train.Samples
		if len(sub) > 2000 {
			sub = sub[:2000]
		}
		tr.Train(sub)
		cands = append(cands, candidate{"Transformer", layers, predict.NewDirectTransformerEngine(tr)})
	}
	for _, c := range cands {
		t.AddRow(c.arch, fmt.Sprintf("%d", c.layers),
			pct(evalOn(c.eng, inDist)), pct(evalOn(c.eng, ood)))
	}
	return t
}

// scaled applies the lab's data-scale to an experiment-local count.
func scaled(lab *Lab, n int) int {
	v := int(float64(n) * lab.Cfg.Scale)
	if v < 8 {
		v = 8
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
