package experiments

import (
	"fmt"

	"neusight/internal/distributed"
	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/metrics"
	"neusight/internal/models"
	"neusight/internal/network"
)

// Table8 reproduces Table 8: distributed training latency prediction on a
// 4x A100-40GB NVLink server and a 4x H100 DGX box, for GPT2-Large and
// GPT3-XL under data, tensor, and pipeline parallelism. Measurement uses
// the full simulation (gpusim + network.Sim); prediction uses NeuSight's
// kernel forecasts plus the link model calibrated on the V100 reference
// system (Section 5.1's methodology). OOM combinations are omitted.
func Table8(lab *Lab) *Table {
	t := &Table{
		ID:    "table8",
		Title: "Distributed training prediction: measured ms / predicted ms (error)",
		Columns: []string{
			"Model", "Global Batch", "Server", "Strategy",
			"Measured (ms)", "NeuSight (ms)", "Error",
		},
	}
	servers := []gpu.ServerSpec{
		gpu.MustLookupServer("A100x4-NVLink"),
		gpu.MustLookupServer("H100x4-DGX"),
	}
	calibrated := network.Calibrate(lab.NetSim, gpu.MustLookupServer("V100x4-NVLink"))

	type cfgRow struct {
		model string
		batch int
	}
	rows := []cfgRow{
		{"GPT2-Large", 4}, {"GPT2-Large", 16}, {"GPT3-XL", 4},
	}
	var errs []float64
	for _, r := range rows {
		m := models.MustLookup(r.model)
		for _, srv := range servers {
			for _, strat := range []distributed.Strategy{
				distributed.DataParallel, distributed.TensorParallel, distributed.PipelineParallel,
			} {
				if oomDistributed(m, r.batch, srv, strat) {
					t.AddRow(r.model, fmt.Sprintf("%d", r.batch), srv.Name, strat.String(), "OOM", "", "")
					continue
				}
				plan := distributed.Plan{
					Model: m, GlobalBatch: r.batch, Server: srv,
					Strategy: strat, Training: true,
				}
				measured, err := distributed.Estimate(plan, lab.simKernelLat(srv.GPU), lab.NetSim)
				must(err)
				predicted, err := distributed.Estimate(plan, lab.neusightKernelLat(srv.GPU), calibrated)
				must(err)
				e := metrics.APE(predicted.TotalMs, measured.TotalMs)
				errs = append(errs, e)
				t.AddRow(r.model, fmt.Sprintf("%d", r.batch), srv.Name, strat.String(),
					ms(measured.TotalMs), ms(predicted.TotalMs), pct(e))
			}
		}
	}
	t.AddRow("AVERAGE", "", "", "", "", "", pct(metrics.Mean(errs)))
	return t
}

// oomDistributed applies the paper's OOM accounting per strategy: DP holds
// the full model per GPU at batch/n; TP shards weights n-ways; PP shards
// layers n-ways but streams the full batch.
func oomDistributed(m models.Config, batch int, srv gpu.ServerSpec, s distributed.Strategy) bool {
	n := srv.NumGPUs
	switch s {
	case distributed.DataParallel:
		if batch < n {
			return true
		}
		return !m.FitsInMemory(batch/n, srv.GPU, true)
	case distributed.TensorParallel:
		return m.MemoryBytes(batch, true)/float64(n) > srv.GPU.MemoryGB*1e9*0.92
	case distributed.PipelineParallel:
		return m.MemoryBytes(batch, true)/float64(n) > srv.GPU.MemoryGB*1e9*0.92
	}
	return false
}

// simKernelLat prices kernels with the ground-truth simulator.
func (l *Lab) simKernelLat(g gpu.Spec) func(kernels.Kernel) float64 {
	return func(k kernels.Kernel) float64 { return l.Sim.KernelLatency(k, g) }
}

// neusightKernelLat prices kernels with the trained predictor, falling back
// to the memory-bound estimate exactly as PredictGraphWith does.
func (l *Lab) neusightKernelLat(g gpu.Spec) func(kernels.Kernel) float64 {
	return func(k kernels.Kernel) float64 {
		lat, err := l.NeuSight.PredictKernel(k, g)
		if err != nil {
			return 0
		}
		return lat
	}
}

// Table9 reproduces Table 9: NeuSight's forecast for multi-node GPT-3
// training on 8x H100 nodes over a hierarchical InfiniBand fat-tree. As in
// the paper, there is no measured ground truth at this scale — the table
// reports the forecast itself.
func Table9(lab *Lab) *Table {
	t := &Table{
		ID:      "table9",
		Title:   "Multi-node GPT-3 training forecast (8x H100 per node, TP8 + DP across nodes)",
		Columns: []string{"# Nodes", "Compute (ms)", "Network (ms)", "NeuSight Prediction (ms)"},
	}
	srv := gpu.MustLookupServer("H100x8-DGX")
	link := network.Calibrate(lab.NetSim, gpu.MustLookupServer("V100x4-NVLink"))
	tree := network.Table9Hierarchy(0.8)
	model := models.GPT3MultiNode()
	for _, nodes := range []int{1, 4, 384, 768, 3840} {
		f, err := distributed.EstimateMultiNode(distributed.MultiNodePlan{
			Model: model, Nodes: nodes, Server: srv, PerNodeBatch: 8,
			Tree: tree, DType: kernels.FP16,
		}, lab.neusightKernelLat(srv.GPU), link)
		must(err)
		t.AddRow(fmt.Sprintf("%d", nodes), ms(f.ComputeMs), ms(f.NetworkMs), ms(f.TotalMs))
	}
	return t
}
