package experiments

import (
	"context"

	"neusight/internal/core"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/metrics"
	"neusight/internal/predict"
	"neusight/internal/tile"
)

// Ablation quantifies NeuSight's design choices (DESIGN.md inventory) by
// knocking each out and measuring kernel-level error on the held-out GPUs:
//
//   - "NeuSight (full)":   the trained predictor with its tile database;
//   - "Heuristic tiles":   same MLPs, but tiles resolved by the library
//     heuristic instead of profiled nearest-match records;
//   - "Fixed util":        the wave/roofline pipeline with a constant 70%
//     utilization instead of the learned law (what remains
//     if you remove the MLP);
//   - "Roofline (util=1)": the pure performance-law bound.
//
// This is not a paper artifact; it supports the paper's argument that the
// learned utilization is the load-bearing component.
func Ablation(lab *Lab) *Table {
	t := &Table{
		ID:      "ablation",
		Title:   "Design ablation: kernel-level percentage error on held-out GPUs",
		Columns: []string{"Variant", "BMM", "FC", "EW", "Softmax", "LN", "All"},
	}
	eval := dataset.Generate(dataset.GenConfig{
		Seed: lab.Cfg.Seed + 77,
		BMM:  scaled(lab, 120), FC: scaled(lab, 60), EW: scaled(lab, 40),
		Softmax: scaled(lab, 25), LN: scaled(lab, 25),
		GPUs: gpu.TestSet(), MaxBMMDim: 2048,
	}, lab.Sim, nil)

	// Heuristic-tile variant: same weights, empty tile database. Every
	// variant — the registered full predictor, the knocked-out clone, and
	// the two analytical strawmen — runs behind the same engine contract.
	heuristic := clonePredictorWithEmptyDB(lab)

	variants := []struct {
		name string
		eng  predict.Engine
	}{
		{"NeuSight (full)", lab.Engine(predict.EngineNeuSight)},
		{"Heuristic tiles", predict.NewCoreEngine(heuristic)},
		{"Fixed util (70%)", predict.NewFuncEngine("fixed-util-70", predict.SourceAnalytical,
			func(k kernels.Kernel, g gpu.Spec) (float64, error) {
				return fixedUtilLatency(k, g, 0.70), nil
			})},
		{"Roofline (util=1)", predict.NewFuncEngine("roofline-unit", predict.SourceAnalytical,
			func(k kernels.Kernel, g gpu.Spec) (float64, error) {
				return fixedUtilLatency(k, g, 1.0), nil
			})},
	}

	catOrder := []kernels.Category{
		kernels.CatBMM, kernels.CatLinear, kernels.CatElementwise,
		kernels.CatSoftmax, kernels.CatLayerNorm,
	}
	ctx := context.Background()
	for _, v := range variants {
		byCat := map[kernels.Category][]float64{}
		var all []float64
		for _, s := range eval.Samples {
			res, err := v.eng.PredictKernel(ctx, predict.Request{Kernel: s.Kernel, GPU: s.GPU})
			if err != nil {
				continue
			}
			e := metrics.APE(res.Latency, s.Latency)
			byCat[s.Kernel.Category()] = append(byCat[s.Kernel.Category()], e)
			all = append(all, e)
		}
		row := []string{v.name}
		for _, c := range catOrder {
			row = append(row, pct(metrics.Mean(byCat[c])))
		}
		row = append(row, pct(metrics.Mean(all)))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// fixedUtilLatency runs the tile/wave/roofline pipeline with a constant
// utilization — the predictor with its MLP removed.
func fixedUtilLatency(k kernels.Kernel, g gpu.Spec, util float64) float64 {
	tl := tile.Select(k, g)
	numTiles := tile.NumTiles(k.OutputDims(), tl)
	waves := tile.NumWaves(numTiles, g.SMs)
	flopsTile := k.FLOPs() / float64(numTiles)
	perSM := core.RooflineBW(k, g) / float64(g.SMs)
	return flopsTile / (perSM * util) * float64(waves) * 1e3
}

// clonePredictorWithEmptyDB reloads the trained weights against an empty
// tile database via the save/load round trip.
func clonePredictorWithEmptyDB(lab *Lab) *core.Predictor {
	path := tempPath("ablation-model.json")
	must(lab.NeuSight.Save(path))
	p, err := core.Load(path, tile.NewDB())
	must(err)
	return p
}
