package experiments

import (
	"context"
	"fmt"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/predict"
	"neusight/internal/tile"
)

// Table2 reproduces Table 2: measured compute utilization of the H100 when
// executing the BERT-shaped (512x64)x(64x512) matrix multiplication across
// batch sizes — the evidence that kernels often under-utilize peak FLOPS.
// The measurement routes through the registered gpusim engine, whose
// Result.Utilization is exactly this metric.
func Table2(lab *Lab) *Table {
	t := &Table{
		ID:      "table2",
		Title:   "H100 compute utilization of (512x64)x(64x512) BMM",
		Columns: []string{"Batch Size", "Peak FLOPS Utilization"},
	}
	sim := lab.Engine(predict.EngineGPUSim)
	ctx := context.Background()
	h100 := gpu.MustLookup("H100")
	for _, b := range []int{32, 64, 128, 256, 512} {
		k := kernels.NewBMM(b, 512, 64, 512)
		res, err := sim.PredictKernel(ctx, predict.Request{Kernel: k, GPU: h100})
		must(err)
		t.AddRow(fmt.Sprintf("%d", b), pct(res.Utilization*100))
	}
	return t
}

// Fig5 reproduces Figure 5: achieved throughput of a (256x256)x(256x256)
// matrix multiplication on V100 as the wave count grows (batch swept 1 to
// 300) — the latency-hiding ramp that motivates the utilization law.
func Fig5(lab *Lab) *Table {
	t := &Table{
		ID:      "fig5",
		Title:   "V100 throughput vs waves for 256x256 GEMM (batch 1-300)",
		Columns: []string{"Batch", "Waves", "Achieved TFLOPS"},
	}
	v100 := gpu.MustLookup("V100")
	for _, b := range []int{1, 5, 10, 20, 40, 80, 120, 160, 200, 240, 300} {
		k := kernels.NewBMM(b, 256, 256, 256)
		tl := tile.Select(k, v100)
		waves := tile.Waves(k, tl, v100)
		tput := lab.Sim.AchievedFLOPS(k, v100) / 1e12
		t.AddRow(fmt.Sprintf("%d", b), fmt.Sprintf("%d", waves), fmt.Sprintf("%.2f", tput))
	}
	return t
}
