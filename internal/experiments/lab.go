package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"neusight/internal/baselines"
	"neusight/internal/core"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
	"neusight/internal/network"
	"neusight/internal/predict"
	"neusight/internal/tile"
)

// Lab is the shared trained state behind every experiment: the measurement
// substrates, the profiling artifacts, and every trained predictor. It is
// built once (training the MLPs is the expensive step) and reused. The
// trained backends are exposed both directly (for training-side access)
// and through Registry, the unified engine set the comparison tables
// iterate.
type Lab struct {
	Cfg LabConfig

	Sim    *gpusim.Simulator
	NetSim *network.Sim

	TileDB   *tile.DB
	Data     *dataset.Dataset
	NeuSight *core.Predictor
	Habitat  *baselines.Habitat
	Li       *baselines.LiRegression
	Roofline baselines.Roofline

	// Registry holds every trained predictor behind the predict.Engine
	// contract; experiments route through it instead of hard-wiring the
	// struct fields above.
	Registry *predict.Registry

	// AMD study state (Figure 9).
	AMDTileDB   *tile.DB
	AMDNeuSight *core.Predictor
}

// LabConfig scales the lab build. Scale multiplies the dataset sizes;
// 1.0 is the full run used by cmd/experiments, smaller values keep unit
// tests and benchmarks fast.
type LabConfig struct {
	Seed    int64
	Scale   float64
	Core    core.Config
	Habitat baselines.DirectConfig
}

// DefaultLabConfig is the full-scale experiment configuration.
func DefaultLabConfig() LabConfig {
	return LabConfig{Seed: 42, Scale: 1.0, Core: core.DefaultConfig(), Habitat: baselines.DefaultDirectConfig()}
}

// QuickLabConfig is a reduced configuration for tests and benchmarks.
func QuickLabConfig() LabConfig {
	return LabConfig{
		Seed:  42,
		Scale: 0.25,
		Core: core.Config{
			Hidden: 32, Layers: 2, Epochs: 30, BatchSize: 128,
			LR: 5e-3, WeightDecay: 1e-4, Seed: 1,
		},
		Habitat: baselines.DirectConfig{
			Hidden: 32, Layers: 2, Epochs: 30, BatchSize: 128, LR: 5e-3, Seed: 2,
		},
	}
}

// scaleGen multiplies the default generation counts.
func scaleGen(seed int64, scale float64, gpus []gpu.Spec) dataset.GenConfig {
	base := dataset.DefaultGenConfig(seed)
	s := func(n int) int {
		v := int(float64(n) * scale)
		if v < 10 {
			v = 10
		}
		return v
	}
	return dataset.GenConfig{
		Seed: seed, BMM: s(base.BMM), FC: s(base.FC), EW: s(base.EW),
		Softmax: s(base.Softmax), LN: s(base.LN),
		GPUs: gpus, MaxBMMDim: 1024,
	}
}

// NewLab generates the training data on the simulated training GPUs and
// trains every predictor (paper Section 6.1's setup).
func NewLab(cfg LabConfig) *Lab {
	lab := &Lab{
		Cfg:    cfg,
		Sim:    gpusim.New(),
		NetSim: network.NewSim(),
		TileDB: tile.NewDB(),
	}
	lab.Data = dataset.Generate(scaleGen(cfg.Seed, cfg.Scale, gpu.TrainSet()), lab.Sim, lab.TileDB)

	lab.NeuSight = core.NewPredictor(cfg.Core, lab.TileDB)
	lab.NeuSight.Train(lab.Data)

	lab.Habitat = baselines.NewHabitat(cfg.Habitat, lab.Sim)
	lab.Habitat.Train(lab.Data)

	lab.Li = baselines.NewLiRegression()
	lab.Li.Train(lab.Data)

	lab.Registry = predict.NewRegistry()
	lab.Registry.MustRegister(predict.NewCoreEngine(lab.NeuSight))
	lab.Registry.MustRegister(predict.NewRooflineEngine())
	lab.Registry.MustRegister(predict.NewHabitatEngine(lab.Habitat))
	lab.Registry.MustRegister(predict.NewLiEngine(lab.Li))
	lab.Registry.MustRegister(predict.NewSimEngine(lab.Sim))
	return lab
}

// Engine resolves a registered engine by name, panicking on a miss —
// experiment code paths run against a fixed registration.
func (l *Lab) Engine(name string) predict.Engine {
	e, err := l.Registry.Get(name)
	must(err)
	return e
}

// EnsureAMD lazily trains the AMD-side NeuSight on MI100/MI210 data
// (Figure 9's cross-vendor study).
func (l *Lab) EnsureAMD() {
	if l.AMDNeuSight != nil {
		return
	}
	l.AMDTileDB = tile.NewDB()
	amdData := dataset.Generate(scaleGen(l.Cfg.Seed+1, l.Cfg.Scale, gpu.AMDTrainSet()), l.Sim, l.AMDTileDB)
	l.AMDNeuSight = core.NewPredictor(l.Cfg.Core, l.AMDTileDB)
	l.AMDNeuSight.Train(amdData)
}

// Engines returns the Figure 7 comparison set in presentation order,
// resolved from the registry (NeuSight first, then the baselines, matching
// the paper's column order).
func (l *Lab) Engines() []predict.Engine {
	names := []string{
		predict.EngineNeuSight, predict.EngineRoofline,
		predict.EngineHabitat, predict.EngineLiRegression,
	}
	out := make([]predict.Engine, len(names))
	for i, n := range names {
		out[i] = l.Engine(n)
	}
	return out
}

// PredictGraphWith sums per-kernel forecasts of e over ks on g through the
// engine's batch path (one compiled forward pass per category for engines
// that batch natively), falling back to the memory-bound estimate when the
// engine cannot handle an operator (matching how the harness treats
// "other" kernels for every method).
func PredictGraphWith(e predict.Engine, ks []kernels.Kernel, g gpu.Spec) float64 {
	total, _, _ := predict.PredictGraphKernels(context.Background(), e, ks, g)
	return total
}

// MeasureGraph sums simulator latencies over kernels on g — the harness's
// ground truth for end-to-end model execution.
func (l *Lab) MeasureGraph(ks []kernels.Kernel, g gpu.Spec) float64 {
	total := 0.0
	for _, k := range ks {
		if k.Category() == kernels.CatNetwork {
			continue
		}
		total += l.Sim.KernelLatency(k, g)
	}
	return total
}

// labelGPU marks out-of-distribution devices as the paper's figures do.
func labelGPU(g gpu.Spec) string {
	for _, t := range gpu.TestSet() {
		if t.Name == g.Name {
			return g.Name + "*"
		}
	}
	if g.Name == "MI250" {
		return g.Name + "*"
	}
	return g.Name
}

// must panics on error — for experiment code paths where inputs are fixed.
func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
}

// tempPath returns a scratch file path under the OS temp directory.
func tempPath(name string) string {
	return filepath.Join(os.TempDir(), fmt.Sprintf("neusight-%d-%s", os.Getpid(), name))
}
