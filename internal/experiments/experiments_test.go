package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/metrics"
	"neusight/internal/models"
)

var (
	labOnce   sync.Once
	sharedLab *Lab
)

// quickLab builds one reduced lab shared by all experiment tests (training
// the predictors is the expensive step).
func quickLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() { sharedLab = NewLab(QuickLabConfig()) })
	return sharedLab
}

// parsePct extracts the numeric value from a "12.3%" cell.
func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q is not a percentage: %v", cell, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	// Every artifact of the paper's evaluation must be registered.
	want := []string{"ablation", "fig10", "fig2", "fig5", "fig7", "fig8",
		"fig9", "table1", "table2", "table6", "table7", "table8", "table9"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registered experiments = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered experiments = %v, want %v", got, want)
		}
	}
	if _, err := Run("nope", nil); err == nil {
		t.Fatal("unknown ID must error")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", Columns: []string{"a", "b"}}
	tb.AddRow("1", "2,3")
	md := tb.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2,3 |") {
		t.Fatalf("markdown = %q", md)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "\"2,3\"") {
		t.Fatalf("CSV must quote commas: %q", csv)
	}
	// AddRow pads missing cells.
	tb.AddRow("only")
	if got := tb.Rows[1][1]; got != "" {
		t.Fatalf("padding cell = %q", got)
	}
}

func TestFig2ShowsOODDegradation(t *testing.T) {
	lab := quickLab(t)
	tables := Fig2(lab)
	if len(tables) != 2 {
		t.Fatalf("Fig2 returned %d tables, want 2", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != len(fig2Dims) {
			t.Fatalf("%s rows = %d, want %d", tb.ID, len(tb.Rows), len(fig2Dims))
		}
	}
	// Habitat: mean error over OOD dims must exceed mean over in-dist dims.
	h := tables[0]
	var inDist, ood []float64
	for _, row := range h.Rows {
		for _, cell := range row[1:] {
			v := parsePct(t, cell)
			if strings.HasSuffix(row[0], "*") {
				ood = append(ood, v)
			} else {
				inDist = append(inDist, v)
			}
		}
	}
	if metrics.Mean(ood) <= metrics.Mean(inDist) {
		t.Fatalf("Habitat OOD error %.1f should exceed in-dist %.1f (Fig 2a shape)",
			metrics.Mean(ood), metrics.Mean(inDist))
	}
}

func TestTable2UtilizationRamps(t *testing.T) {
	lab := quickLab(t)
	tb := Table2(lab)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 batch sizes", len(tb.Rows))
	}
	first := parsePct(t, tb.Rows[0][1])
	last := parsePct(t, tb.Rows[len(tb.Rows)-1][1])
	if last <= first {
		t.Fatalf("utilization should ramp with batch: %v -> %v", first, last)
	}
	for _, r := range tb.Rows {
		v := parsePct(t, r[1])
		if v <= 0 || v > 100 {
			t.Fatalf("utilization %v out of (0, 100]", v)
		}
	}
}

func TestFig5ThroughputSaturates(t *testing.T) {
	lab := quickLab(t)
	tb := Fig5(lab)
	var tputs []float64
	for _, r := range tb.Rows {
		v, err := strconv.ParseFloat(r[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		tputs = append(tputs, v)
	}
	if tputs[len(tputs)-1] <= tputs[0] {
		t.Fatal("throughput must grow with waves")
	}
	peak := gpu.MustLookup("V100").PeakFLOPS
	for _, v := range tputs {
		if v > peak {
			t.Fatalf("throughput %v exceeds V100 peak %v", v, peak)
		}
	}
}

func TestFig7NeuSightWins(t *testing.T) {
	lab := quickLab(t)
	tables := Fig7(lab)
	if len(tables) != 2 {
		t.Fatalf("Fig7 returned %d tables", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) < 20 {
			t.Fatalf("%s has only %d rows", tb.ID, len(tb.Rows))
		}
		// The AVERAGE row: NeuSight (col 4) must beat Habitat (col 6) and
		// Li et al. (col 7), the paper's headline ordering.
		avg := tb.Rows[len(tb.Rows)-3]
		if avg[0] != "AVERAGE" {
			t.Fatalf("%s missing AVERAGE row: %v", tb.ID, avg)
		}
		ns := parsePct(t, avg[4])
		habitat := parsePct(t, avg[6])
		li := parsePct(t, avg[7])
		if ns >= habitat || ns >= li {
			t.Fatalf("%s: NeuSight %.1f%% must beat Habitat %.1f%% and Li %.1f%%", tb.ID, ns, habitat, li)
		}
		// And the OOD-GPU average should stay moderate while baselines blow up.
		oodRow := tb.Rows[len(tb.Rows)-2]
		nsOOD := parsePct(t, oodRow[4])
		if nsOOD >= parsePct(t, oodRow[6]) {
			t.Fatalf("%s: NeuSight OOD %.1f%% must beat Habitat OOD", tb.ID, nsOOD)
		}
	}
}

func TestFig8CoversCategories(t *testing.T) {
	lab := quickLab(t)
	tb := Fig8(lab)
	if len(tb.Rows) != 5 {
		t.Fatalf("Fig8 rows = %d, want 5 operator categories", len(tb.Rows))
	}
	names := map[string]bool{}
	for _, r := range tb.Rows {
		names[r[0]] = true
	}
	for _, want := range []string{"BMM", "FC", "EW", "Softmax", "LN"} {
		if !names[want] {
			t.Fatalf("Fig8 missing category %s", want)
		}
	}
}

func TestTable6SharesSumToOne(t *testing.T) {
	lab := quickLab(t)
	tb := Table6(lab)
	for _, r := range tb.Rows {
		sum := 0.0
		for _, cell := range r[2:] {
			sum += parsePct(t, cell)
		}
		if sum < 95 || sum > 105 {
			t.Fatalf("row %v contribution sums to %.1f%%, want ~100%%", r[0], sum)
		}
	}
	// GEMMs dominate transformer inference (the paper's point).
	for _, r := range tb.Rows {
		if parsePct(t, r[3]) < 40 {
			t.Fatalf("%s: LINEAR share %.1f%% implausibly low", r[0], parsePct(t, r[3]))
		}
	}
}

func TestFig9AMDGeneralization(t *testing.T) {
	lab := quickLab(t)
	tables := Fig9(lab)
	if len(tables) != 2 {
		t.Fatalf("Fig9 returned %d tables", len(tables))
	}
	for _, tb := range tables {
		last := tb.Rows[len(tb.Rows)-1]
		if last[0] != "AVERAGE" {
			t.Fatal("missing AVERAGE row")
		}
		if avg := parsePct(t, last[4]); avg > 60 {
			t.Fatalf("%s: AMD cross-vendor error %.1f%% too high", tb.ID, avg)
		}
	}
}

func TestTable7FusionSpeedsUpAndPredicts(t *testing.T) {
	lab := quickLab(t)
	tb := Table7(lab)
	if len(tb.Rows) != 12 {
		t.Fatalf("Table7 rows = %d, want 4 workloads x 3 GPUs", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		mPlain, _ := strconv.ParseFloat(r[3], 64)
		mFused, _ := strconv.ParseFloat(r[5], 64)
		if mFused >= mPlain {
			t.Fatalf("%v: fusion should speed up measured latency (%v vs %v)", r[0], mFused, mPlain)
		}
	}
}

func TestFig10FP16Accuracy(t *testing.T) {
	lab := quickLab(t)
	tb := Fig10(lab)
	last := tb.Rows[len(tb.Rows)-1]
	if avg := parsePct(t, last[4]); avg > 60 {
		t.Fatalf("FP16 tensor-core average error %.1f%% too high", avg)
	}
}

func TestTable8DistributedAccuracy(t *testing.T) {
	lab := quickLab(t)
	tb := Table8(lab)
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "AVERAGE" {
		t.Fatal("missing AVERAGE row")
	}
	if avg := parsePct(t, last[6]); avg > 40 {
		t.Fatalf("distributed average error %.1f%% too high", avg)
	}
	// All three strategies must appear.
	strategies := map[string]bool{}
	for _, r := range tb.Rows[:len(tb.Rows)-1] {
		strategies[r[3]] = true
	}
	for _, s := range []string{"Data Parallel", "Tensor Parallel", "Pipeline Parallel"} {
		if !strategies[s] {
			t.Fatalf("missing strategy %s", s)
		}
	}
}

func TestTable9Shape(t *testing.T) {
	lab := quickLab(t)
	tb := Table9(lab)
	if len(tb.Rows) != 5 {
		t.Fatalf("Table9 rows = %d, want 5 node counts", len(tb.Rows))
	}
	var totals []float64
	for _, r := range tb.Rows {
		v, err := strconv.ParseFloat(r[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		totals = append(totals, v)
	}
	for i := 1; i < len(totals); i++ {
		if totals[i] <= totals[i-1] {
			t.Fatalf("multi-node latency must grow with nodes: %v", totals)
		}
	}
	// Paper shape: large jump between 4 and 384 nodes, mild growth after.
	if totals[2] < 1.5*totals[1] {
		t.Fatalf("expected InfiniBand jump at 384 nodes: %v", totals)
	}
	if (totals[4]-totals[2])/totals[2] > 0.3 {
		t.Fatalf("growth beyond 384 nodes should be mild: %v", totals)
	}
}

func TestPredictGraphWithFallsBack(t *testing.T) {
	lab := quickLab(t)
	// A graph containing an operator no baseline models (embedding) must
	// still produce a finite total.
	m := models.MustLookup("BERT-Large")
	ks := m.InferenceGraph(1).Kernels()
	for _, p := range lab.Engines() {
		v := PredictGraphWith(p, ks, gpu.MustLookup("V100"))
		if v <= 0 {
			t.Fatalf("%s produced non-positive graph latency", p.Name())
		}
	}
}

func TestMeasureGraphSkipsNetworkKernels(t *testing.T) {
	lab := quickLab(t)
	ks := []kernels.Kernel{
		kernels.NewLinear(128, 128, 128),
		kernels.NewAllReduce(1 << 20),
	}
	withNet := lab.MeasureGraph(ks, gpu.MustLookup("V100"))
	withoutNet := lab.MeasureGraph(ks[:1], gpu.MustLookup("V100"))
	if withNet != withoutNet {
		t.Fatal("network kernels must not contribute to device measurement")
	}
}

func TestAblationOrdering(t *testing.T) {
	lab := quickLab(t)
	tb := Ablation(lab)
	if len(tb.Rows) != 4 {
		t.Fatalf("ablation rows = %d, want 4 variants", len(tb.Rows))
	}
	overall := map[string]float64{}
	for _, r := range tb.Rows {
		overall[r[0]] = parsePct(t, r[6])
	}
	// The learned utilization must beat both knocked-out variants, which
	// is the paper's core argument.
	full := overall["NeuSight (full)"]
	if full >= overall["Fixed util (70%)"] {
		t.Fatalf("full NeuSight %.1f%% must beat fixed utilization %.1f%%",
			full, overall["Fixed util (70%)"])
	}
	if full >= overall["Roofline (util=1)"] {
		t.Fatalf("full NeuSight %.1f%% must beat the roofline bound %.1f%%",
			full, overall["Roofline (util=1)"])
	}
}
