package experiments

import (
	"fmt"

	"neusight/internal/gpu"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/metrics"
	"neusight/internal/models"
	"neusight/internal/predict"
)

// Fig9 reproduces Figure 9: NeuSight trained on MI100/MI210 data predicting
// the held-out MI250 across models and batch sizes, for inference and
// training — the cross-vendor generalization study.
func Fig9(lab *Lab) []*Table {
	lab.EnsureAMD()
	mi250 := gpu.MustLookup("MI250")
	amdModels := []string{"BERT-Large", "GPT2-Large", "GPT3-XL", "GPT3-2.7B", "OPT-1.3B"}
	batches := map[string][]int{
		"BERT-Large": {8, 16}, "GPT2-Large": {4, 8},
		"GPT3-XL": {2, 4}, "GPT3-2.7B": {2, 4}, "OPT-1.3B": {2, 4},
	}
	var tables []*Table
	for _, training := range []bool{false, true} {
		id, title := "fig9a", "AMD MI250 inference prediction error (trained on MI100/MI210)"
		if training {
			id, title = "fig9b", "AMD MI250 training prediction error (trained on MI100/MI210)"
		}
		t := &Table{ID: id, Title: title,
			Columns: []string{"Model", "Batch", "Measured (ms)", "NeuSight (ms)", "Error"}}
		var errs []float64
		for _, name := range amdModels {
			m := models.MustLookup(name)
			for _, b := range batches[name] {
				if !m.FitsInMemory(b, mi250, training) {
					continue
				}
				gr := m.InferenceGraph(b)
				if training {
					gr = m.TrainingGraph(b)
				}
				ks := gr.Kernels()
				measured := lab.MeasureGraph(ks, mi250)
				pred := PredictGraphWith(predict.NewCoreEngine(lab.AMDNeuSight), ks, mi250)
				e := metrics.APE(pred, measured)
				errs = append(errs, e)
				t.AddRow(name, fmt.Sprintf("%d", b), ms(measured), ms(pred), pct(e))
			}
		}
		t.AddRow("AVERAGE", "", "", "", pct(metrics.Mean(errs)))
		tables = append(tables, t)
	}
	return tables
}

// Table7 reproduces Table 7: inference prediction with operator fusion
// (torch.compile-style) for BERT-Large and GPT2-Large on L4, A100-40GB,
// and H100 — measured and predicted latency for the fused and non-fused
// graphs.
func Table7(lab *Lab) *Table {
	t := &Table{
		ID:    "table7",
		Title: "Operator-fusion inference prediction (measured / predicted ms, error)",
		Columns: []string{
			"Model", "Batch", "GPU",
			"Non-fused measured", "Non-fused predicted",
			"Fused measured", "Fused predicted",
		},
	}
	nsEng := lab.Engine(predict.EngineNeuSight)
	gpus := []gpu.Spec{gpu.MustLookup("L4"), gpu.MustLookup("A100-40GB"), gpu.MustLookup("H100")}
	rows := []workload{
		{models.MustLookup("BERT-Large"), 8},
		{models.MustLookup("BERT-Large"), 16},
		{models.MustLookup("GPT2-Large"), 4},
		{models.MustLookup("GPT2-Large"), 8},
	}
	for _, w := range rows {
		plain := w.Model.InferenceGraph(w.Batch)
		fused := graph.Fuse(plain)
		for _, g := range gpus {
			mPlain := lab.MeasureGraph(plain.Kernels(), g)
			mFused := lab.MeasureGraph(fused.Kernels(), g)
			pPlain := PredictGraphWith(nsEng, plain.Kernels(), g)
			pFused := PredictGraphWith(nsEng, fused.Kernels(), g)
			t.AddRow(w.Model.Name, fmt.Sprintf("%d", w.Batch), labelGPU(g),
				ms(mPlain), fmt.Sprintf("%s (%s)", ms(pPlain), pct(metrics.APE(pPlain, mPlain))),
				ms(mFused), fmt.Sprintf("%s (%s)", ms(pFused), pct(metrics.APE(pFused, mFused))))
		}
	}
	return t
}

// Fig10 reproduces Figure 10: FP16 batched matrix multiplication on H100
// tensor cores — NeuSight adapted by adjusting input features for the
// lower precision and higher peak FLOPS.
func Fig10(lab *Lab) *Table {
	t := &Table{
		ID:      "fig10",
		Title:   "H100 FP16 tensor-core (NxN)x(NxN) BMM prediction",
		Columns: []string{"N", "Batch", "Measured (ms)", "NeuSight (ms)", "Error"},
	}
	h100 := gpu.MustLookup("H100")
	var errs []float64
	for _, n := range []int{512, 1024, 2048, 4096} {
		for _, b := range []int{8, 16} {
			k := kernels.NewBMM(b, n, n, n).WithDType(kernels.FP16)
			measured := lab.Sim.KernelLatency(k, h100)
			pred, err := lab.NeuSight.PredictKernel(k, h100)
			must(err)
			e := metrics.APE(pred, measured)
			errs = append(errs, e)
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", b), ms(measured), ms(pred), pct(e))
		}
	}
	t.AddRow("AVERAGE", "", "", "", pct(metrics.Mean(errs)))
	return t
}
