package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one paper artifact from a trained lab.
type Runner func(*Lab) []*Table

// registry maps experiment IDs to their runners.
var registry = map[string]Runner{
	"fig2":     Fig2,
	"table1":   func(l *Lab) []*Table { return []*Table{Table1(l)} },
	"table2":   func(l *Lab) []*Table { return []*Table{Table2(l)} },
	"fig5":     func(l *Lab) []*Table { return []*Table{Fig5(l)} },
	"fig7":     Fig7,
	"fig8":     func(l *Lab) []*Table { return []*Table{Fig8(l)} },
	"table6":   func(l *Lab) []*Table { return []*Table{Table6(l)} },
	"fig9":     Fig9,
	"table7":   func(l *Lab) []*Table { return []*Table{Table7(l)} },
	"fig10":    func(l *Lab) []*Table { return []*Table{Fig10(l)} },
	"table8":   func(l *Lab) []*Table { return []*Table{Table8(l)} },
	"table9":   func(l *Lab) []*Table { return []*Table{Table9(l)} },
	"ablation": func(l *Lab) []*Table { return []*Table{Ablation(l)} },
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given ID.
func Run(id string, lab *Lab) ([]*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(lab), nil
}
