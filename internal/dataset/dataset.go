// Package dataset generates and manages the predictor training data,
// standing in for the paper's measurement campaign (Section 6.1): operator
// configurations sampled over the published ranges, "measured" on the
// training-set GPUs via the execution simulator, with the library-chosen
// tile recorded into the tile database exactly as the paper records
// PyTorch-Profiler metadata.
package dataset

import (
	"encoding/csv"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"

	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
	"neusight/internal/tile"
)

// Sample is one measured operator execution.
type Sample struct {
	Kernel  kernels.Kernel
	GPU     gpu.Spec
	Tile    tile.Tile
	Latency float64 // measured latency, ms
}

// Dataset is an ordered collection of samples.
type Dataset struct {
	Samples []Sample
}

// GenConfig sizes the generation run. Counts are operator configurations;
// each configuration is measured on every GPU in GPUs. The paper's ranges
// are hard-coded per category; counts here default (via DefaultGenConfig)
// to a scale where pure-Go MLP training stays fast while covering the same
// distributions.
type GenConfig struct {
	Seed      int64
	BMM       int
	FC        int
	EW        int
	Softmax   int
	LN        int
	GPUs      []gpu.Spec
	MaxBMMDim int // upper bound for BMM dims (paper: 1024 in training)
}

// DefaultGenConfig returns the standard training-set generation: the five
// training GPUs, BMM dims capped at 1024, and per-category counts scaled
// ~20x down from the paper's 150k-point campaign.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{
		Seed: seed, BMM: 900, FC: 450, EW: 350, Softmax: 180, LN: 180,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}
}

// ewOps are the elementwise operators the paper profiles.
var ewOps = []kernels.Op{
	kernels.OpEWAdd, kernels.OpEWDiv, kernels.OpEWMul,
	kernels.OpEWGELU, kernels.OpEWReLU, kernels.OpEWTanh,
}

// Generate samples operator configurations, measures them on every
// configured GPU with sim, and records tiles into tdb (which may be nil).
func Generate(cfg GenConfig, sim *gpusim.Simulator, tdb *tile.DB) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.MaxBMMDim == 0 {
		cfg.MaxBMMDim = 1024
	}
	var ks []kernels.Kernel
	for i := 0; i < cfg.BMM; i++ {
		ks = append(ks, kernels.NewBMM(
			logUniform(rng, 1, 1024), logUniform(rng, 1, cfg.MaxBMMDim),
			logUniform(rng, 1, cfg.MaxBMMDim), logUniform(rng, 1, cfg.MaxBMMDim)))
	}
	for i := 0; i < cfg.FC; i++ {
		ks = append(ks, kernels.NewLinear(
			logUniform(rng, 1, 8192), logUniform(rng, 1, 65536), logUniform(rng, 1, 65536)))
	}
	for i := 0; i < cfg.EW; i++ {
		op := ewOps[rng.Intn(len(ewOps))]
		ks = append(ks, kernels.NewElementwise(op, logUniform(rng, 512, 16384), logUniform(rng, 512, 4096)))
	}
	for i := 0; i < cfg.Softmax; i++ {
		ks = append(ks, kernels.NewSoftmax(logUniform(rng, 4096, 16384), logUniform(rng, 512, 4096)))
	}
	for i := 0; i < cfg.LN; i++ {
		ks = append(ks, kernels.NewLayerNorm(logUniform(rng, 4096, 16384), logUniform(rng, 512, 4096)))
	}

	d := &Dataset{}
	for _, k := range ks {
		for _, g := range cfg.GPUs {
			t := tile.Select(k, g)
			if tdb != nil {
				tdb.Add(k, g, t)
			}
			d.Samples = append(d.Samples, Sample{
				Kernel: k, GPU: g, Tile: t,
				Latency: sim.KernelLatency(k, g),
			})
		}
	}
	return d
}

// logUniform draws an integer in [lo, hi] log-uniformly, matching the
// paper's coverage of several orders of magnitude per dimension.
func logUniform(rng *rand.Rand, lo, hi int) int {
	if lo >= hi {
		return lo
	}
	v := math.Exp(rng.Float64()*(math.Log(float64(hi))-math.Log(float64(lo))) + math.Log(float64(lo)))
	n := int(math.Round(v))
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}

// FilterCategory returns the samples whose kernel routes to cat.
func (d *Dataset) FilterCategory(cat kernels.Category) *Dataset {
	out := &Dataset{}
	for _, s := range d.Samples {
		if s.Kernel.Category() == cat {
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}

// Split shuffles deterministically and partitions into train and validation
// sets, validation receiving valFrac of the samples (paper: 20%).
func (d *Dataset) Split(valFrac float64, seed int64) (train, val *Dataset) {
	idx := rand.New(rand.NewSource(seed)).Perm(len(d.Samples))
	nVal := int(float64(len(d.Samples)) * valFrac)
	train, val = &Dataset{}, &Dataset{}
	for i, j := range idx {
		if i < nVal {
			val.Samples = append(val.Samples, d.Samples[j])
		} else {
			train.Samples = append(train.Samples, d.Samples[j])
		}
	}
	return train, val
}

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.Samples) }

// SaveCSV writes the dataset in a stable column layout.
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"op", "b", "m", "k", "n", "dtype", "gpu", "tile", "latency_ms"}); err != nil {
		return err
	}
	for _, s := range d.Samples {
		tileStr := ""
		for i, t := range s.Tile.Dims {
			if i > 0 {
				tileStr += "x"
			}
			tileStr += strconv.Itoa(t)
		}
		rec := []string{
			strconv.Itoa(int(s.Kernel.Op)),
			strconv.Itoa(s.Kernel.B), strconv.Itoa(s.Kernel.M),
			strconv.Itoa(s.Kernel.K), strconv.Itoa(s.Kernel.N),
			strconv.Itoa(int(s.Kernel.DType)),
			s.GPU.Name, tileStr,
			strconv.FormatFloat(s.Latency, 'g', -1, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// LoadCSV reads a dataset written by SaveCSV.
func LoadCSV(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty file %s", path)
	}
	d := &Dataset{}
	for _, row := range rows[1:] {
		if len(row) != 9 {
			return nil, fmt.Errorf("dataset: malformed row %v", row)
		}
		ints := make([]int, 6)
		for i := 0; i < 6; i++ {
			ints[i], err = strconv.Atoi(row[i])
			if err != nil {
				return nil, fmt.Errorf("dataset: bad int in row %v: %w", row, err)
			}
		}
		g, err := gpu.Lookup(row[6])
		if err != nil {
			return nil, err
		}
		var tl tile.Tile
		for _, part := range splitX(row[7]) {
			v, err := strconv.Atoi(part)
			if err != nil {
				return nil, fmt.Errorf("dataset: bad tile %q: %w", row[7], err)
			}
			tl.Dims = append(tl.Dims, v)
		}
		lat, err := strconv.ParseFloat(row[8], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: bad latency %q: %w", row[8], err)
		}
		d.Samples = append(d.Samples, Sample{
			Kernel: kernels.Kernel{
				Op: kernels.Op(ints[0]), B: ints[1], M: ints[2], K: ints[3], N: ints[4],
				DType: kernels.DType(ints[5]),
			},
			GPU: g, Tile: tl, Latency: lat,
		})
	}
	return d, nil
}

func splitX(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == 'x' {
			out = append(out, cur)
			cur = ""
		} else {
			cur += string(r)
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
