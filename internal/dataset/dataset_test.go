package dataset

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
	"neusight/internal/tile"
)

func smallGen(seed int64) GenConfig {
	return GenConfig{
		Seed: seed, BMM: 20, FC: 10, EW: 10, Softmax: 5, LN: 5,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}
}

func TestGenerateCountsAndCoverage(t *testing.T) {
	tdb := tile.NewDB()
	d := Generate(smallGen(1), gpusim.New(), tdb)
	wantConfigs := 20 + 10 + 10 + 5 + 5
	if d.Len() != wantConfigs*5 {
		t.Fatalf("samples = %d, want %d (configs x 5 GPUs)", d.Len(), wantConfigs*5)
	}
	if tdb.Len() != d.Len() {
		t.Fatalf("tile DB records = %d, want %d", tdb.Len(), d.Len())
	}
	cats := map[kernels.Category]int{}
	gpus := map[string]bool{}
	for _, s := range d.Samples {
		cats[s.Kernel.Category()]++
		gpus[s.GPU.Name] = true
		if s.Latency <= 0 {
			t.Fatalf("non-positive latency in sample %+v", s)
		}
	}
	for _, c := range []kernels.Category{kernels.CatBMM, kernels.CatLinear, kernels.CatElementwise, kernels.CatSoftmax, kernels.CatLayerNorm} {
		if cats[c] == 0 {
			t.Fatalf("category %v missing from dataset", c)
		}
	}
	if len(gpus) != 5 {
		t.Fatalf("GPU coverage = %d, want all 5 training GPUs", len(gpus))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallGen(7), gpusim.New(), nil)
	b := Generate(smallGen(7), gpusim.New(), nil)
	if a.Len() != b.Len() {
		t.Fatal("determinism violated: different lengths")
	}
	for i := range a.Samples {
		if a.Samples[i].Kernel.Label() != b.Samples[i].Kernel.Label() ||
			a.Samples[i].Latency != b.Samples[i].Latency {
			t.Fatalf("determinism violated at sample %d", i)
		}
	}
}

func TestGenerateRespectsRanges(t *testing.T) {
	d := Generate(smallGen(2), gpusim.New(), nil)
	for _, s := range d.Samples {
		k := s.Kernel
		switch k.Category() {
		case kernels.CatBMM:
			if k.M > 1024 || k.K > 1024 || k.N > 1024 || k.B > 1024 {
				t.Fatalf("BMM sample exceeds training range: %+v", k)
			}
		case kernels.CatElementwise:
			if k.B < 512 || k.B > 16384 || k.M < 512 || k.M > 4096 {
				t.Fatalf("EW sample outside paper range: %+v", k)
			}
		case kernels.CatSoftmax, kernels.CatLayerNorm:
			if k.B < 4096 || k.B > 16384 {
				t.Fatalf("reduction sample outside paper range: %+v", k)
			}
		}
	}
}

func TestSplit(t *testing.T) {
	d := Generate(smallGen(3), gpusim.New(), nil)
	train, val := d.Split(0.2, 9)
	if train.Len()+val.Len() != d.Len() {
		t.Fatal("split lost samples")
	}
	wantVal := int(float64(d.Len()) * 0.2)
	if val.Len() != wantVal {
		t.Fatalf("val size = %d, want %d", val.Len(), wantVal)
	}
	// Same seed reproduces the same split.
	t2, _ := d.Split(0.2, 9)
	if t2.Samples[0].Kernel.Label() != train.Samples[0].Kernel.Label() {
		t.Fatal("split not deterministic")
	}
}

func TestFilterCategory(t *testing.T) {
	d := Generate(smallGen(4), gpusim.New(), nil)
	bmm := d.FilterCategory(kernels.CatBMM)
	if bmm.Len() != 20*5 {
		t.Fatalf("BMM filter = %d, want 100", bmm.Len())
	}
	for _, s := range bmm.Samples {
		if s.Kernel.Category() != kernels.CatBMM {
			t.Fatal("filter leaked other categories")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := Generate(smallGen(5), gpusim.New(), nil)
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := d.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("reloaded %d samples, want %d", back.Len(), d.Len())
	}
	for i := range d.Samples {
		a, b := d.Samples[i], back.Samples[i]
		if a.Kernel.Label() != b.Kernel.Label() || a.GPU.Name != b.GPU.Name || a.Latency != b.Latency {
			t.Fatalf("sample %d mismatch after round trip:\n%+v\n%+v", i, a, b)
		}
		if len(a.Tile.Dims) != len(b.Tile.Dims) {
			t.Fatalf("tile rank mismatch at %d", i)
		}
	}
}

func TestLoadCSVMissingFile(t *testing.T) {
	if _, err := LoadCSV(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

// Property: logUniform stays within bounds and covers both ends.
func TestLogUniformProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lo := 1 + rng.Intn(100)
		hi := lo + rng.Intn(10000)
		for i := 0; i < 50; i++ {
			v := logUniform(rng, lo, hi)
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	// Coverage: across many draws from [1, 1024] we should see small,
	// medium, and large values.
	rng := rand.New(rand.NewSource(11))
	var small, large bool
	for i := 0; i < 500; i++ {
		v := logUniform(rng, 1, 1024)
		if v <= 8 {
			small = true
		}
		if v >= 512 {
			large = true
		}
	}
	if !small || !large {
		t.Fatal("logUniform does not cover the range ends")
	}
}
