package core

import (
	"math"
	"sync"
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/tile"
)

// racePredictor trains one small predictor shared by the concurrency tests
// in this file: they only read it, and sharing keeps `go test -race` fast.
var (
	raceOnce sync.Once
	racePred *Predictor
)

func sharedRacePredictor(t *testing.T) *Predictor {
	t.Helper()
	raceOnce.Do(func() { racePred = trainSmall(t, 7) })
	if racePred == nil {
		t.Fatal("shared race predictor failed to train")
	}
	return racePred
}

// TestPredictKernelConcurrent drives a trained predictor from 32 goroutines
// over a mix of kernels and GPUs. It guards the serving path's thread
// safety: the tile singleflight cache, the model-map RWMutex, and the
// read-only MLP forward pass must all be race-clean, and results must be
// deterministic regardless of interleaving.
func TestPredictKernelConcurrent(t *testing.T) {
	p := sharedRacePredictor(t)
	gpus := []gpu.Spec{gpu.MustLookup("V100"), gpu.MustLookup("H100")}
	ks := []kernels.Kernel{
		kernels.NewBMM(4, 256, 256, 256),
		kernels.NewLinear(128, 512, 512),
		kernels.NewElementwise(kernels.OpEWAdd, 1024, 1024),
		kernels.NewSoftmax(256, 512),
		kernels.NewLayerNorm(256, 512),
	}

	// Reference forecasts computed serially first.
	want := map[string]float64{}
	for _, g := range gpus {
		for _, k := range ks {
			l, err := p.PredictKernel(k, g)
			if err != nil {
				t.Fatalf("serial PredictKernel(%s, %s): %v", k.Label(), g.Name, err)
			}
			want[k.Label()+"@"+g.Name] = l
		}
	}

	const goroutines = 32
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g := gpus[(w+i)%len(gpus)]
				k := ks[(w+i)%len(ks)]
				l, err := p.PredictKernel(k, g)
				if err != nil {
					t.Errorf("PredictKernel(%s, %s): %v", k.Label(), g.Name, err)
					return
				}
				if ref := want[k.Label()+"@"+g.Name]; math.Abs(l-ref) > 1e-12 {
					t.Errorf("PredictKernel(%s, %s) = %v under concurrency, want %v", k.Label(), g.Name, l, ref)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestPredictGraphConcurrent runs concurrent whole-graph forecasts — the
// shape of traffic the serve layer generates — alongside introspection
// calls that read the model maps.
func TestPredictGraphConcurrent(t *testing.T) {
	p := sharedRacePredictor(t)
	g := gpu.MustLookup("V100")

	gr := graph.New("race")
	a := gr.Add(kernels.NewLinear(64, 256, 256))
	b := gr.Add(kernels.NewElementwise(kernels.OpEWGELU, 64, 256), a)
	gr.Add(kernels.NewLayerNorm(64, 256), b)

	want, _, werr := p.PredictGraph(gr, g)
	if werr != nil {
		t.Fatal(werr)
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if got, _, _ := p.PredictGraph(gr, g); math.Abs(got-want) > 1e-12 {
					t.Errorf("PredictGraph = %v under concurrency, want %v", got, want)
					return
				}
				if cats := p.TrainedCategories(); len(cats) != 5 {
					t.Errorf("TrainedCategories = %d, want 5", len(cats))
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestTileForRefreshesOnDBGeneration checks the predictor's tile cache
// notices database Adds: an entry memoized against an older generation is
// re-resolved, so profiling that continues after the first prediction is
// not pinned out by the cache.
func TestTileForRefreshesOnDBGeneration(t *testing.T) {
	tdb := tile.NewDB()
	g := gpu.MustLookup("V100")
	far := kernels.NewBMM(64, 2048, 2048, 2048)
	tdb.Add(far, g, tile.Tile{Dims: []int{256, 256}})

	p := NewPredictor(testConfig(), tdb)
	query := kernels.NewBMM(1, 32, 32, 32)
	if got := p.tileFor(query, g); got.Dims[0] != 256 {
		t.Fatalf("initial tile = %v, want the far record's 256x256", got.Dims)
	}
	// An exact record lands after the cache is warm; the predictor must
	// pick it up rather than serving the stale nearest match.
	tdb.Add(query, g, tile.Tile{Dims: []int{16, 16}})
	if got := p.tileFor(query, g); got.Dims[0] != 16 {
		t.Errorf("post-Add tile = %v, want the exact record's 16x16", got.Dims)
	}
}

// TestTileForCoalesces checks the singleflight tile cache returns identical
// tiles from every goroutine for a cold key.
func TestTileForCoalesces(t *testing.T) {
	p := sharedRacePredictor(t)
	g := gpu.MustLookup("H100")
	k := kernels.NewBMM(8, 768, 768, 768)

	tiles := make([][]int, 32)
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tiles[w] = p.tileFor(k, g).Dims
		}(w)
	}
	wg.Wait()
	for w := 1; w < 32; w++ {
		if len(tiles[w]) != len(tiles[0]) {
			t.Fatalf("goroutine %d saw tile %v, goroutine 0 saw %v", w, tiles[w], tiles[0])
		}
		for j := range tiles[w] {
			if tiles[w][j] != tiles[0][j] {
				t.Fatalf("goroutine %d saw tile %v, goroutine 0 saw %v", w, tiles[w], tiles[0])
			}
		}
	}
}
