package core

import (
	"sort"

	"neusight/internal/dataset"
	"neusight/internal/kernels"
)

// calibMaxReplication caps how many times a calibration sample is
// replicated to balance it against the base training set — a tiny window
// of observations must not be inflated into the entire gradient signal.
const calibMaxReplication = 64

// CalibrationReport summarizes one Calibrate call.
type CalibrationReport struct {
	// Trained maps each retrained category to the number of distinct
	// calibration samples folded into its training set.
	Trained map[kernels.Category]int
	// Skipped counts calibration samples outside the trained categories or
	// with non-positive latency.
	Skipped int
	// Loss is the final training loss per retrained category.
	Loss map[kernels.Category]float64
}

// Calibrate folds observed latencies back into the predictor: calibration
// samples are grouped by kernel category, replicated to rough parity with
// the base training set for that category (so a small observation window
// still moves the model), merged with the base samples, and each affected
// category is retrained through TrainCategory — the same shadow-train,
// hot-swap, generation-bump path as offline training, so cache-key
// versioning and cluster gossip invalidate stale forecasts for free.
//
// base is the offline training set to retain (nil trains on the
// calibration samples alone, e.g. a process started from -model without
// its dataset). Calibration samples need no tiles: featurization resolves
// missing tiles through the predictor's tile DB. Categories without a
// trained MLP and without calibration samples are untouched.
func (p *Predictor) Calibrate(base *dataset.Dataset, calib []dataset.Sample) CalibrationReport {
	rep := CalibrationReport{
		Trained: map[kernels.Category]int{},
		Loss:    map[kernels.Category]float64{},
	}
	byCat := map[kernels.Category][]dataset.Sample{}
	for _, s := range calib {
		cat := s.Kernel.Category()
		if !isTrainedCat(cat) || !(s.Latency > 0) {
			rep.Skipped++
			continue
		}
		byCat[cat] = append(byCat[cat], s)
	}

	cats := make([]kernels.Category, 0, len(byCat))
	for cat := range byCat {
		cats = append(cats, cat)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })

	for _, cat := range cats {
		obs := byCat[cat]
		merged := &dataset.Dataset{}
		if base != nil {
			merged.Samples = append(merged.Samples, base.FilterCategory(cat).Samples...)
		}
		reps := 1
		if n := len(merged.Samples); n > len(obs) {
			reps = n / len(obs)
			if reps > calibMaxReplication {
				reps = calibMaxReplication
			}
		}
		for i := 0; i < reps; i++ {
			merged.Samples = append(merged.Samples, obs...)
		}
		rep.Loss[cat] = p.TrainCategory(cat, merged)
		rep.Trained[cat] = len(obs)
	}
	return rep
}

func isTrainedCat(cat kernels.Category) bool {
	for _, c := range trainedCats {
		if c == cat {
			return true
		}
	}
	return false
}
