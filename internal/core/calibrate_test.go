package core

import (
	"testing"

	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
	"neusight/internal/tile"
)

// calibSetup trains a small predictor and returns it with its training
// set — Calibrate needs the base dataset to retain.
func calibSetup(t *testing.T, seed int64) (*Predictor, *dataset.Dataset) {
	t.Helper()
	tdb := tile.NewDB()
	ds := dataset.Generate(dataset.GenConfig{
		Seed: seed, BMM: 150, FC: 80, EW: 60, Softmax: 40, LN: 40,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, gpusim.New(), tdb)
	p := NewPredictor(testConfig(), tdb)
	if rep := p.Train(ds); len(rep.FinalLoss) != 5 {
		t.Fatalf("trained %d categories, want 5", len(rep.FinalLoss))
	}
	return p, ds
}

// Calibrate must move the affected category's predictions toward the
// observed latencies, bump the generation (the cache/gossip invalidation
// signal), and leave the other categories' MLPs untouched.
func TestCalibrateShiftsPredictionsTowardObserved(t *testing.T) {
	p, ds := calibSetup(t, 42)
	g := gpu.MustLookup("H100")

	probe := kernels.NewBMM(4, 512, 512, 512)
	before, err := p.PredictKernel(probe, g)
	if err != nil {
		t.Fatal(err)
	}
	smProbe := kernels.NewSoftmax(64, 1024)
	smBefore, err := p.PredictKernel(smProbe, g)
	if err != nil {
		t.Fatal(err)
	}

	// Pretend reality is 3x slower than the model thinks, across a spread
	// of BMM shapes around the probe. No tiles attached: featurization
	// must resolve them through the predictor's tile DB.
	var calib []dataset.Sample
	for _, m := range []int{256, 384, 512, 640, 768} {
		k := kernels.NewBMM(4, m, 512, 512)
		pred, err := p.PredictKernel(k, g)
		if err != nil {
			t.Fatal(err)
		}
		calib = append(calib, dataset.Sample{Kernel: k, GPU: g, Latency: 3 * pred})
	}

	gen0 := p.Generation()
	rep := p.Calibrate(ds, calib)
	if rep.Trained[kernels.CatBMM] != len(calib) {
		t.Fatalf("trained %v, want %d BMM samples", rep.Trained, len(calib))
	}
	if rep.Skipped != 0 {
		t.Fatalf("skipped %d, want 0", rep.Skipped)
	}
	if p.Generation() <= gen0 {
		t.Fatalf("generation %d after calibration, want > %d", p.Generation(), gen0)
	}

	after, err := p.PredictKernel(probe, g)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("calibrated prediction %v did not move up from %v toward %v", after, before, 3*before)
	}
	// Other categories must be untouched: calibration retrains per
	// category, not the whole model.
	smAfter, err := p.PredictKernel(smProbe, g)
	if err != nil {
		t.Fatal(err)
	}
	if smAfter != smBefore {
		t.Fatalf("softmax prediction moved %v -> %v; calibration must only retrain BMM", smBefore, smAfter)
	}
}

func TestCalibrateSkipsUntrainableSamples(t *testing.T) {
	p, ds := calibSetup(t, 43)
	g := gpu.MustLookup("H100")
	gen0 := p.Generation()
	rep := p.Calibrate(ds, []dataset.Sample{
		{Kernel: kernels.NewEmbedding(2048, 1024, 50257), GPU: g, Latency: 5}, // memory-bound: no MLP
		{Kernel: kernels.NewBMM(4, 512, 512, 512), GPU: g, Latency: 0},        // non-positive latency
	})
	if rep.Skipped != 2 || len(rep.Trained) != 0 {
		t.Fatalf("skipped=%d trained=%v, want 2 skipped and nothing trained", rep.Skipped, rep.Trained)
	}
	if p.Generation() != gen0 {
		t.Fatal("nothing trained, yet the generation moved")
	}
}

// Calibrating without the base dataset (a process started from a saved
// model, its training set long gone) trains on the observations alone
// rather than failing.
func TestCalibrateWithoutBaseDataset(t *testing.T) {
	p, _ := calibSetup(t, 44)
	g := gpu.MustLookup("H100")
	var calib []dataset.Sample
	for _, m := range []int{256, 512, 768} {
		calib = append(calib, dataset.Sample{Kernel: kernels.NewBMM(4, m, 512, 512), GPU: g, Latency: 2})
	}
	rep := p.Calibrate(nil, calib)
	if rep.Trained[kernels.CatBMM] != 3 {
		t.Fatalf("trained %v, want 3 BMM samples", rep.Trained)
	}
}
