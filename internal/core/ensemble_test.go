package core

import (
	"math"
	"testing"

	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
	"neusight/internal/metrics"
	"neusight/internal/tile"
)

func trainEnsemble(t *testing.T, size int) *Ensemble {
	t.Helper()
	tdb := tile.NewDB()
	ds := dataset.Generate(dataset.GenConfig{
		Seed: 61, BMM: 120, FC: 60, EW: 40, Softmax: 25, LN: 25,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, gpusim.New(), tdb)
	cfg := testConfig()
	cfg.Epochs = 15
	e := NewEnsemble(cfg, tdb, size)
	e.Train(ds)
	return e
}

func TestEnsembleSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty ensemble")
		}
	}()
	NewEnsemble(testConfig(), tile.NewDB(), 0)
}

func TestEnsembleMeanAndSpread(t *testing.T) {
	e := trainEnsemble(t, 3)
	if e.Size() != 3 {
		t.Fatalf("Size = %d", e.Size())
	}
	g := gpu.MustLookup("H100")
	k := kernels.NewBMM(16, 768, 768, 768)
	mean, std, err := e.PredictKernelWithSpread(k, g)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 || math.IsNaN(mean) {
		t.Fatalf("mean = %v", mean)
	}
	if std < 0 || std > mean {
		t.Fatalf("spread %v implausible against mean %v", std, mean)
	}
	// Mean must equal the average of the members.
	sum := 0.0
	for _, m := range e.members {
		p, err := m.PredictKernel(k, g)
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	if math.Abs(mean-sum/3) > 1e-9 {
		t.Fatal("ensemble mean is not the member average")
	}
}

func TestEnsembleAtLeastAsAccurateAsWorstMember(t *testing.T) {
	e := trainEnsemble(t, 3)
	sim := gpusim.New()
	eval := dataset.Generate(dataset.GenConfig{
		Seed: 62, BMM: 40, GPUs: gpu.TestSet(), MaxBMMDim: 1024,
	}, sim, nil)
	memberErr := make([]float64, e.Size())
	var ensErr []float64
	for _, s := range eval.Samples {
		em, err := e.PredictKernel(s.Kernel, s.GPU)
		if err != nil {
			t.Fatal(err)
		}
		ensErr = append(ensErr, metrics.APE(em, s.Latency))
		for i, m := range e.members {
			p, err := m.PredictKernel(s.Kernel, s.GPU)
			if err != nil {
				t.Fatal(err)
			}
			memberErr[i] += metrics.APE(p, s.Latency)
		}
	}
	worst := 0.0
	for _, me := range memberErr {
		if v := me / float64(len(eval.Samples)); v > worst {
			worst = v
		}
	}
	if got := metrics.Mean(ensErr); got > worst+1e-9 {
		t.Fatalf("ensemble error %.2f%% exceeds worst member %.2f%%", got, worst)
	}
}

func TestEnsembleGraphSpread(t *testing.T) {
	e := trainEnsemble(t, 3)
	g := gpu.MustLookup("L4")
	gr := graphOfThree()
	mean, std := e.PredictGraphWithSpread(gr, g)
	if mean <= 0 || std < 0 {
		t.Fatalf("mean %v, std %v", mean, std)
	}
	// Independent seeds must actually disagree a little.
	if std == 0 {
		t.Fatal("zero spread across independently seeded members is suspicious")
	}
}
