package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	ad "neusight/internal/autodiff"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/loss"
	"neusight/internal/mat"
	"neusight/internal/nn"
	"neusight/internal/opt"
	"neusight/internal/tile"
)

// Config sizes the per-category utilization MLPs and their training run.
// The paper trains 8x512 MLPs with AdamW for 100 epochs; the defaults here
// are scaled to pure-Go training speed while keeping the architecture
// family (stacked ReLU layers, two sigmoid-bounded heads).
type Config struct {
	Hidden      int
	Layers      int
	Epochs      int
	BatchSize   int
	LR          float64
	WeightDecay float64
	Seed        int64
}

// DefaultConfig returns the standard training configuration.
func DefaultConfig() Config {
	return Config{Hidden: 64, Layers: 3, Epochs: 60, BatchSize: 256, LR: 3e-3, WeightDecay: 1e-4, Seed: 42}
}

// Predictor is a trained NeuSight instance: one utilization MLP per
// operator category plus the tile database recorded during profiling.
//
// A trained Predictor is safe for concurrent PredictKernel / PredictKernels
// / PredictGraph / Utilization calls: the MLP and normalization maps are
// guarded against a concurrent Train, and tile resolution deduplicates
// in-flight database scans so identical kernels arriving together pay for
// one lookup.
//
// Training and prediction use different representations of the same
// weights. Train fits autodiff MLPs (gradients flow through the latency
// equations); every prediction then runs through a nn.CompiledMLP — an
// immutable weight snapshot with an allocation-free forward pass — compiled
// lazily on the first prediction after Train or Load and invalidated
// whenever a category is retrained.
type Predictor struct {
	Cfg    Config
	TileDB *tile.DB

	stateMu  sync.RWMutex
	mlps     map[kernels.Category]*nn.MLP
	stats    map[kernels.Category]*featureStats
	compiled map[kernels.Category]*nn.CompiledMLP

	// modelGen counts learned-state changes: TrainCategory and Load bump it
	// so Generation moves whenever weights are replaced.
	modelGen atomic.Uint64

	mu        sync.Mutex
	tileCache map[string]*tileEntry
}

// tileEntry is a singleflight slot in the tile cache: the first goroutine to
// claim a key computes the tile and closes done; later arrivals wait on done
// instead of re-scanning the database. gen records the tile database
// generation the entry was resolved against, so entries go stale when Add
// changes the record set; ok is false if the resolving goroutine panicked.
type tileEntry struct {
	done chan struct{}
	t    tile.Tile
	gen  uint64
	ok   bool
}

// NewPredictor returns an untrained predictor that resolves tiles via tdb.
func NewPredictor(cfg Config, tdb *tile.DB) *Predictor {
	if tdb == nil {
		tdb = tile.NewDB()
	}
	return &Predictor{
		Cfg: cfg, TileDB: tdb,
		mlps:      map[kernels.Category]*nn.MLP{},
		stats:     map[kernels.Category]*featureStats{},
		compiled:  map[kernels.Category]*nn.CompiledMLP{},
		tileCache: map[string]*tileEntry{},
	}
}

// tileCacheLimit bounds the tile cache below. When full, completed entries
// are evicted wholesale — serving traffic repeats heavily, so the cache
// refills with the live working set; in-flight entries are kept because
// waiters are parked on their done channels.
const tileCacheLimit = 8192

// tileFor resolves the tile for k on g through a small cache: DNN graphs
// repeat identical kernels across layers, and the nearest-match database
// scan is the expensive step of a prediction. Concurrent calls for the same
// key coalesce onto a single database scan, and entries resolved against an
// older database generation are re-resolved, so profiling that continues
// after the first prediction still reaches the serving path.
func (p *Predictor) tileFor(k kernels.Kernel, g gpu.Spec) tile.Tile {
	key := tile.QueryKey(k, g)
	gen := p.TileDB.Generation()
	p.mu.Lock()
	e, found := p.tileCache[key]
	if !found || (isClosed(e.done) && (e.gen != gen || !e.ok)) {
		if !found && len(p.tileCache) >= tileCacheLimit {
			for k2, e2 := range p.tileCache {
				if isClosed(e2.done) {
					delete(p.tileCache, k2)
				}
			}
		}
		e = &tileEntry{done: make(chan struct{}), gen: gen}
		p.tileCache[key] = e
		p.mu.Unlock()
		// Close done even if LookupOrSelect panics: a wedged entry would
		// block every later caller of this key forever. Waiters see
		// ok=false and resolve directly.
		defer close(e.done)
		e.t = p.TileDB.LookupOrSelect(k, g)
		e.ok = true
		return e.t
	}
	p.mu.Unlock()
	<-e.done
	if !e.ok {
		return p.TileDB.LookupOrSelect(k, g)
	}
	return e.t
}

// isClosed reports whether done has been closed (i.e. the entry's resolver
// finished). An in-flight entry is never replaced, even if stale: waiters
// are already parked on it.
func isClosed(done chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// model returns the trained MLP and feature stats for cat, or ok=false.
func (p *Predictor) model(cat kernels.Category) (*nn.MLP, *featureStats, bool) {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	mlp, ok := p.mlps[cat]
	return mlp, p.stats[cat], ok
}

// compiledModel returns the compiled forward pass and feature stats for
// cat, compiling lazily on the first prediction after Train or Load. The
// common case is a read-locked map hit; the slow path double-checks under
// the write lock so concurrent first predictions compile once.
func (p *Predictor) compiledModel(cat kernels.Category) (*nn.CompiledMLP, *featureStats, bool) {
	p.stateMu.RLock()
	if cm := p.compiled[cat]; cm != nil {
		st := p.stats[cat]
		p.stateMu.RUnlock()
		return cm, st, true
	}
	_, trained := p.mlps[cat]
	p.stateMu.RUnlock()
	if !trained {
		return nil, nil, false
	}
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	mlp, ok := p.mlps[cat]
	if !ok { // retrain/reload raced us away
		return nil, nil, false
	}
	cm := p.compiled[cat]
	if cm == nil {
		cm = nn.Compile(mlp)
		p.compiled[cat] = cm
	}
	return cm, p.stats[cat], true
}

// Name implements the predictor naming convention used by the harness.
func (p *Predictor) Name() string { return "NeuSight" }

// TrainReport records the final training loss per category.
type TrainReport struct {
	FinalLoss map[kernels.Category]float64
	Samples   map[kernels.Category]int
}

// Train fits one MLP per category present in ds and returns a report.
func (p *Predictor) Train(ds *dataset.Dataset) TrainReport {
	rep := TrainReport{
		FinalLoss: map[kernels.Category]float64{},
		Samples:   map[kernels.Category]int{},
	}
	for _, cat := range trainedCats {
		sub := ds.FilterCategory(cat)
		if sub.Len() == 0 {
			continue
		}
		l := p.TrainCategory(cat, sub)
		rep.FinalLoss[cat] = l
		rep.Samples[cat] = sub.Len()
	}
	return rep
}

// TrainCategory fits the MLP for one operator category and returns the
// final epoch's mean SMAPE loss.
func (p *Predictor) TrainCategory(cat kernels.Category, ds *dataset.Dataset) float64 {
	rng := rand.New(rand.NewSource(p.Cfg.Seed + int64(cat)))
	mlp := nn.NewMLP(rng, nn.MLPConfig{
		In: NumFeatures, Hidden: p.Cfg.Hidden, Out: 2,
		Layers: p.Cfg.Layers, Activation: nn.ActReLU,
	})

	rawX, _, _, _ := sampleTensors(ds.Samples, p.TileDB, nil)
	st := fitStats(rawX)
	X, c, w, y := sampleTensors(ds.Samples, p.TileDB, &st)

	optim := opt.NewAdamW(mlp.Params(), opt.AdamWConfig{LR: p.Cfg.LR, WeightDecay: p.Cfg.WeightDecay})
	n := len(X)
	bs := p.Cfg.BatchSize
	if bs > n {
		bs = n
	}
	var final float64
	for epoch := 0; epoch < p.Cfg.Epochs; epoch++ {
		optim.SetLR(opt.CosineDecay(p.Cfg.LR, p.Cfg.LR/20, epoch, p.Cfg.Epochs))
		perm := rng.Perm(n)
		total, batches := 0.0, 0
		for lo := 0; lo < n; lo += bs {
			hi := lo + bs
			if hi > n {
				hi = n
			}
			xb := mat.New(hi-lo, NumFeatures)
			cb := mat.New(hi-lo, 1)
			wb := mat.New(hi-lo, 1)
			yb := mat.New(hi-lo, 1)
			for i := lo; i < hi; i++ {
				j := perm[i]
				copy(xb.Row(i-lo), X[j])
				cb.Data[i-lo] = c[j][0]
				wb.Data[i-lo] = w[j][0]
				yb.Data[i-lo] = y[j][0]
			}
			pred := predictExpr(mlp, ad.NewConstant(xb), ad.NewConstant(cb), ad.NewConstant(wb))
			l := loss.SMAPE(pred, ad.NewConstant(yb))
			ad.Backward(l)
			optim.Step()
			total += l.Data.Data[0]
			batches++
		}
		final = total / float64(batches)
	}
	p.stateMu.Lock()
	p.mlps[cat] = mlp
	p.stats[cat] = &st
	// Invalidate the compiled snapshot; the next prediction recompiles from
	// the fresh weights. In-flight predictions keep their old snapshot.
	delete(p.compiled, cat)
	p.stateMu.Unlock()
	p.modelGen.Add(1)
	return final
}

// Generation identifies the predictor's current learned state: it changes
// whenever TrainCategory replaces a category's weights or the tile database
// records new profiles — exactly the events that make previously returned
// forecasts stale. Serving caches fold it into their keys so retraining
// invalidates cached predictions automatically instead of relying on a
// manual flush.
func (p *Predictor) Generation() uint64 {
	return p.modelGen.Load()<<32 | p.TileDB.Generation()&0xffffffff
}

// predictExpr builds the differentiable latency expression: c / util with
// util from the MLP heads (Eq. 5-8 composed).
func predictExpr(mlp *nn.MLP, X, c, w *ad.Value) *ad.Value {
	heads := mlp.Forward(X)
	util := utilFromHeads(heads, w)
	return ad.Div(c, util)
}

// PredictKernel forecasts the latency of kernel k on device g in
// milliseconds. Kernels in the five trained categories go through the
// tile/utilization pipeline on the compiled inference path — no autodiff
// graph is built; anything else uses the memory-bound fallback (paper
// Section 4.3). Network kernels are rejected — the network model owns them.
func (p *Predictor) PredictKernel(k kernels.Kernel, g gpu.Spec) (float64, error) {
	lat, _, err := p.PredictKernelDetail(k, g)
	return lat, err
}

// PredictKernelDetail is PredictKernel plus the bounded utilization behind
// the forecast — the quantity the predict.Engine contract surfaces.
// Memory-bound fallbacks report utilization 0: the closed-form estimate has
// no learned utilization.
func (p *Predictor) PredictKernelDetail(k kernels.Kernel, g gpu.Spec) (lat, util float64, err error) {
	cat := k.Category()
	if cat == kernels.CatNetwork {
		return 0, 0, fmt.Errorf("core: network kernel %s must be predicted by the network model", k.Label())
	}
	cm, st, ok := p.compiledModel(cat)
	if !ok {
		if cat == kernels.CatMemoryBound {
			return MemBoundLatency(k, g), 0, nil
		}
		return 0, 0, fmt.Errorf("%w %v", ErrUntrained, cat)
	}
	c, util := p.compiledEval(cm, st, k, g)
	return c / util, util, nil
}

// compiledEval runs the compiled single-kernel pipeline — tile resolution,
// latency constant, featurization, normalization, one forward pass, and the
// utilization law — and returns the latency constant and bounded
// utilization. It is the one copy of the pipeline whose bit-identity with
// the autodiff expression the parity tests enforce; PredictKernel and
// Utilization must not diverge from each other.
func (p *Predictor) compiledEval(cm *nn.CompiledMLP, st *featureStats, k kernels.Kernel, g gpu.Spec) (c, util float64) {
	t := p.tileFor(k, g)
	c, waves := latencyConstant(k, g, t)
	f := Features(k, g, t, waves)
	st.applyInPlace(f)
	var heads [2]float64
	cm.ForwardRow(f, heads[:])
	return c, utilScalar(heads[0], heads[1], float64(waves))
}

// predictKernelAutodiff is the pre-compilation prediction path: it builds
// the full autodiff expression (graph nodes, gradient buffers, backward
// closures) exactly as training does. It is retained for parity tests and
// the compiled-vs-autodiff benchmarks; serving traffic never takes it.
func (p *Predictor) predictKernelAutodiff(k kernels.Kernel, g gpu.Spec) (float64, error) {
	cat := k.Category()
	if cat == kernels.CatNetwork {
		return 0, fmt.Errorf("core: network kernel %s must be predicted by the network model", k.Label())
	}
	mlp, st, ok := p.model(cat)
	if !ok {
		if cat == kernels.CatMemoryBound {
			return MemBoundLatency(k, g), nil
		}
		return 0, fmt.Errorf("%w %v", ErrUntrained, cat)
	}
	t := p.tileFor(k, g)
	c, waves := latencyConstant(k, g, t)
	f := st.apply(Features(k, g, t, waves))

	x := ad.NewConstant(mat.FromSlice(1, NumFeatures, f))
	cv := ad.NewConstant(mat.FromSlice(1, 1, []float64{c}))
	wv := ad.NewConstant(mat.FromSlice(1, 1, []float64{float64(waves)}))
	return predictExpr(mlp, x, cv, wv).Data.Data[0], nil
}

// Utilization returns the bounded utilization the predictor assigns to k on
// g — useful for introspection and the Table 2 style analyses.
func (p *Predictor) Utilization(k kernels.Kernel, g gpu.Spec) (float64, error) {
	cat := k.Category()
	cm, st, ok := p.compiledModel(cat)
	if !ok {
		return 0, fmt.Errorf("%w %v", ErrUntrained, cat)
	}
	_, util := p.compiledEval(cm, st, k, g)
	return util, nil
}

// GraphReport summarizes how a graph forecast was produced: how many
// kernels went through the trained pipeline, how many failed and were
// priced by the memory-bound fallback instead, and how many network
// kernels were skipped for the distributed layer. Serving surfaces it on
// /v2/predict/graph so a forecast quietly held together by fallbacks is
// visible to the caller.
type GraphReport struct {
	// Kernels counts the predictable (non-network) kernels submitted.
	Kernels int `json:"kernels"`
	// Predicted counts kernels the predictor answered itself (including
	// closed-form memory-bound categories — that is their model).
	Predicted int `json:"predicted"`
	// Fallbacks counts kernels whose prediction failed and contributed the
	// memory-bound estimate instead.
	Fallbacks int `json:"fallbacks"`
	// Network counts kernels skipped because the distributed layer prices
	// them.
	Network int `json:"network"`
}

// FoldPredictions folds positional per-kernel forecasts (lats[i]/errs[i]
// answering ks[i]) into an end-to-end total: kernels that failed to predict
// contribute the memory-bound estimate and are counted in rep, and the
// returned error aggregates them (nil when every kernel predicted). A
// context cancellation among the errors aborts the fold instead — a
// half-evaluated graph must surface as a failure, not a quietly degraded
// total assembled from fallback guesses. This is the one copy of the
// fallback-aggregation rule; PredictGraph, the engine layer, and the
// serving layer all share it.
func FoldPredictions(lats []float64, errs []error, ks []kernels.Kernel, g gpu.Spec, rep *GraphReport) (float64, error) {
	total := 0.0
	var firstErr error
	for i, l := range lats {
		if errs[i] != nil {
			if errors.Is(errs[i], context.Canceled) || errors.Is(errs[i], context.DeadlineExceeded) {
				// Leave a consistent report behind the abort: the partial
				// Predicted/Fallbacks counts covered nothing that is being
				// returned, so only the submission size survives.
				*rep = GraphReport{Kernels: len(ks), Network: rep.Network}
				return 0, errs[i]
			}
			if firstErr == nil {
				firstErr = errs[i]
			}
			rep.Fallbacks++
			l = MemBoundLatency(ks[i], g)
		} else {
			rep.Predicted++
		}
		total += l
	}
	rep.Kernels = len(ks)
	var err error
	if rep.Fallbacks > 0 {
		err = fmt.Errorf("core: %d of %d kernels could not be predicted and used the memory-bound fallback (first: %w)",
			rep.Fallbacks, rep.Kernels, firstErr)
	}
	return total, err
}

// PredictGraph forecasts the end-to-end latency of a kernel graph on g by
// sequential aggregation (Section 5), batching every predictable kernel
// through one PredictKernels call per category so the whole graph pays for
// a handful of compiled forward passes. Kernels that fail to predict
// contribute their memory-bound fallback rather than aborting the forecast,
// but the failure is no longer silent: the report counts them and the error
// aggregates them (nil when every kernel predicted). Network kernels
// contribute zero (the distributed layer prices them).
func (p *Predictor) PredictGraph(gr *graph.Graph, g gpu.Spec) (float64, GraphReport, error) {
	var rep GraphReport
	ks := make([]kernels.Kernel, 0, len(gr.Nodes))
	for _, n := range gr.Nodes {
		if n.Kernel.Category() == kernels.CatNetwork {
			rep.Network++
			continue
		}
		ks = append(ks, n.Kernel)
	}
	lats, errs := p.PredictKernels(ks, g)
	total, err := FoldPredictions(lats, errs, ks, g, &rep)
	return total, rep, err
}

// TrainedCategories lists the categories with fitted MLPs, sorted.
func (p *Predictor) TrainedCategories() []kernels.Category {
	p.stateMu.RLock()
	var cats []kernels.Category
	for c := range p.mlps {
		cats = append(cats, c)
	}
	p.stateMu.RUnlock()
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	return cats
}

// predictorState is the serialized form of a trained predictor.
type predictorState struct {
	Cfg   Config                  `json:"cfg"`
	MLPs  map[string]*nn.MLP      `json:"mlps"`
	Stats map[string]featureStats `json:"stats"`
}

// Save writes the trained predictor (MLPs + normalization) as JSON. The
// tile database is saved separately via its own Save.
func (p *Predictor) Save(path string) error {
	st := predictorState{Cfg: p.Cfg, MLPs: map[string]*nn.MLP{}, Stats: map[string]featureStats{}}
	p.stateMu.RLock()
	for cat, m := range p.mlps {
		st.MLPs[cat.String()] = m
		st.Stats[cat.String()] = *p.stats[cat]
	}
	p.stateMu.RUnlock()
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load restores a predictor saved by Save, attaching tdb for tile lookups.
func Load(path string, tdb *tile.DB) (*Predictor, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st predictorState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, err
	}
	p := NewPredictor(st.Cfg, tdb)
	for _, cat := range trainedCats {
		if m, ok := st.MLPs[cat.String()]; ok {
			p.mlps[cat] = m
			s := st.Stats[cat.String()]
			p.stats[cat] = &s
		}
	}
	p.modelGen.Add(1)
	return p, nil
}
