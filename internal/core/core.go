// Package core implements NeuSight, the paper's primary contribution: a
// forecasting framework that predicts deep-learning kernel latency on GPUs
// it has never run on.
//
// Instead of regressing latency directly (the failure mode of prior work,
// Section 3), NeuSight:
//
//  1. decomposes each kernel into the tiles the GPU library actually
//     schedules (Eq. 2) and the waves they execute in (Eq. 3);
//  2. asks a small per-operator-category MLP for the coefficients of a
//     utilization law, util = alpha - beta/waves (Eq. 7-8), with sigmoid
//     bounding utilization below 1;
//  3. converts utilization to latency through the roofline performance law
//     (Eq. 1, 5, 6), so predictions can never exceed physical limits;
//  4. aggregates tile -> kernel -> graph under the sequential-execution
//     model (Section 5).
//
// Training backpropagates a SMAPE loss through the latency equations into
// the MLP weights using the internal autodiff engine, exactly mirroring the
// paper's end-to-end formulation.
package core

import (
	"fmt"
	"math"

	ad "neusight/internal/autodiff"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/nn"
	"neusight/internal/tile"
)

// NumFeatures is the size of the Table 3 input feature vector.
const NumFeatures = 5

// utilFloor keeps the utilization law away from zero so latency stays
// finite during training and prediction.
const utilFloor = 0.01

// Features computes the Table 3 input features for one tile of kernel k on
// device g, given the tile and wave decomposition. Features are per-SM
// resource utilization ratios, log-compressed for conditioning (the raw
// ratios span many orders of magnitude).
func Features(k kernels.Kernel, g gpu.Spec, t tile.Tile, waves int) []float64 {
	numTiles := tile.NumTiles(k.OutputDims(), t)
	flopsTile := k.FLOPs() / float64(numTiles)
	memTile := k.MemBytes() / float64(numTiles)

	fp16 := k.DType == kernels.FP16
	peak := g.PeakFLOPSFor(fp16) * 1e12
	bw := g.MemoryBWGBs * 1e9
	sms := float64(g.SMs)

	perSMPeak := peak / sms
	perSMBW := bw / sms
	perSML2 := g.L2CacheMB * 1e6 / sms
	perSMMem := g.MemoryGB * 1e9 / sms

	w := float64(waves)
	f := []float64{
		flopsTile / perSMPeak,               // compute seconds per tile
		memTile / perSMBW,                   // memory seconds per tile
		w * memTile / perSML2,               // L2 pressure across waves
		w * memTile / perSMMem,              // HBM footprint across waves
		(flopsTile / memTile) / (peak / bw), // intensity vs machine balance
	}
	for i, v := range f {
		f[i] = math.Log(math.Max(v, 1e-12))
	}
	return f
}

// RooflineBW evaluates Eq. 1: the maximum achievable throughput of k on g
// in FLOP/s, min(K x memBW_peak, FLOPS_peak).
func RooflineBW(k kernels.Kernel, g gpu.Spec) float64 {
	fp16 := k.DType == kernels.FP16
	peak := g.PeakFLOPSFor(fp16) * 1e12
	bw := g.MemoryBWGBs * 1e9
	ai := k.ArithmeticIntensity()
	return math.Min(ai*bw, peak)
}

// latencyConstant returns c such that predicted latency (ms) = c / util:
// waves x flopsPerTile / roofline, scaled to milliseconds (Eq. 4-6).
func latencyConstant(k kernels.Kernel, g gpu.Spec, t tile.Tile) (c float64, waves int) {
	numTiles := tile.NumTiles(k.OutputDims(), t)
	waves = tile.NumWaves(numTiles, g.SMs)
	flopsTile := k.FLOPs() / float64(numTiles)
	roofline := RooflineBW(k, g)
	// The roofline is a whole-device rate; one wave uses all SMs, so the
	// per-wave latency is tile FLOPs over the per-SM share of roofline.
	perSM := roofline / float64(g.SMs)
	c = flopsTile / perSM * float64(waves) * 1e3
	return c, waves
}

// MemBoundLatency is the fallback estimate for operators without a trained
// predictor (paper Section 4.3): memory traffic over peak bandwidth.
func MemBoundLatency(k kernels.Kernel, g gpu.Spec) float64 {
	return k.MemBytes() / (g.MemoryBWGBs * 1e9) * 1e3
}

// featureStats holds per-dimension normalization fitted on training data.
type featureStats struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

func fitStats(rows [][]float64) featureStats {
	st := featureStats{Mean: make([]float64, NumFeatures), Std: make([]float64, NumFeatures)}
	n := float64(len(rows))
	for _, r := range rows {
		for j, v := range r {
			st.Mean[j] += v
		}
	}
	for j := range st.Mean {
		st.Mean[j] /= n
	}
	for _, r := range rows {
		for j, v := range r {
			d := v - st.Mean[j]
			st.Std[j] += d * d
		}
	}
	for j := range st.Std {
		st.Std[j] = math.Sqrt(st.Std[j]/n) + 1e-8
	}
	return st
}

func (st featureStats) apply(row []float64) []float64 {
	out := make([]float64, len(row))
	copy(out, row)
	st.applyInPlace(out)
	return out
}

// applyInPlace normalizes row in place — the allocation-free form of apply
// used by the compiled prediction path.
func (st featureStats) applyInPlace(row []float64) {
	for j, v := range row {
		row[j] = (v - st.Mean[j]) / st.Std[j]
	}
}

// ErrUntrained is returned when predicting a category that has no trained
// MLP and no memory-bound fallback applies.
var ErrUntrained = fmt.Errorf("core: predictor not trained for category")

// trainedCats enumerates the five categories with dedicated MLPs.
var trainedCats = []kernels.Category{
	kernels.CatBMM, kernels.CatLinear, kernels.CatElementwise,
	kernels.CatSoftmax, kernels.CatLayerNorm,
}

// utilFromHeads converts the two MLP head outputs into the bounded
// utilization of Eq. 7-8 as an autodiff expression. waves is a per-sample
// constant column.
func utilFromHeads(heads *ad.Value, waves *ad.Value) *ad.Value {
	alpha := ad.Sigmoid(ad.SliceCols(heads, 0, 1))
	beta := ad.Sigmoid(ad.SliceCols(heads, 1, 2))
	util := ad.Sub(alpha, ad.Div(beta, waves))
	return ad.ClampMin(util, utilFloor)
}

// utilScalar is the scalar form of utilFromHeads used by the compiled
// inference path: sigmoid-bounded alpha and beta, the wave law, and the
// utilization floor, applied to one sample's raw heads. The formulas match
// the autodiff ops exactly, so compiled predictions are bit-identical to
// the expression training differentiates.
func utilScalar(h0, h1, waves float64) float64 {
	alpha := nn.SigmoidScalar(h0)
	beta := nn.SigmoidScalar(h1)
	return math.Max(alpha-beta/waves, utilFloor)
}

// sampleTensors extracts the per-sample training tensors for one category:
// normalized features X, latency constants c, waves w, and targets y.
func sampleTensors(samples []dataset.Sample, tdb *tile.DB, st *featureStats) (X, c, w, y [][]float64) {
	for _, s := range samples {
		t := s.Tile
		if len(t.Dims) == 0 {
			t = tdb.LookupOrSelect(s.Kernel, s.GPU)
		}
		cc, waves := latencyConstant(s.Kernel, s.GPU, t)
		f := Features(s.Kernel, s.GPU, t, waves)
		if st != nil {
			f = st.apply(f)
		}
		X = append(X, f)
		c = append(c, []float64{cc})
		w = append(w, []float64{float64(waves)})
		y = append(y, []float64{s.Latency})
	}
	return X, c, w, y
}
