package core

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/metrics"
	"neusight/internal/tile"
)

// testConfig is a fast configuration for unit tests.
func testConfig() Config {
	return Config{Hidden: 32, Layers: 2, Epochs: 25, BatchSize: 128, LR: 5e-3, WeightDecay: 1e-4, Seed: 1}
}

// trainSmall builds a small but functional predictor over the given
// categories.
func trainSmall(t *testing.T, seed int64) *Predictor {
	t.Helper()
	tdb := tile.NewDB()
	ds := dataset.Generate(dataset.GenConfig{
		Seed: seed, BMM: 150, FC: 80, EW: 60, Softmax: 40, LN: 40,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, gpusim.New(), tdb)
	p := NewPredictor(testConfig(), tdb)
	rep := p.Train(ds)
	if len(rep.FinalLoss) != 5 {
		t.Fatalf("trained %d categories, want 5", len(rep.FinalLoss))
	}
	return p
}

func TestFeaturesShapeAndFiniteness(t *testing.T) {
	g := gpu.MustLookup("V100")
	k := kernels.NewBMM(8, 512, 512, 512)
	tl := tile.Select(k, g)
	waves := tile.Waves(k, tl, g)
	f := Features(k, g, tl, waves)
	if len(f) != NumFeatures {
		t.Fatalf("features = %d, want %d", len(f), NumFeatures)
	}
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %d = %v", i, v)
		}
	}
}

func TestFeaturesReflectPrecision(t *testing.T) {
	g := gpu.MustLookup("H100")
	k32 := kernels.NewBMM(8, 1024, 1024, 1024)
	k16 := k32.WithDType(kernels.FP16)
	tl := tile.Select(k32, g)
	w := tile.Waves(k32, tl, g)
	f32 := Features(k32, g, tl, w)
	f16 := Features(k16, g, tl, w)
	// fp16 tensor-core peak is higher -> compute-seconds feature drops.
	if f16[0] >= f32[0] {
		t.Fatal("fp16 should reduce the compute-time feature on tensor-core GPUs")
	}
	if f16[1] >= f32[1] {
		t.Fatal("fp16 halves traffic; memory-time feature must drop")
	}
}

func TestRooflineBW(t *testing.T) {
	g := gpu.MustLookup("V100")
	// Huge square GEMM: compute bound -> roofline = peak FLOPS.
	big := kernels.NewBMM(1, 8192, 8192, 8192)
	if got := RooflineBW(big, g); got != g.PeakFLOPS*1e12 {
		t.Fatalf("compute-bound roofline = %v, want peak", got)
	}
	// Elementwise add: memory bound -> roofline < peak.
	ew := kernels.NewElementwise(kernels.OpEWAdd, 4096, 4096)
	if got := RooflineBW(ew, g); got >= g.PeakFLOPS*1e12 {
		t.Fatal("memory-bound roofline should be below peak FLOPS")
	}
}

func TestMemBoundLatency(t *testing.T) {
	g := gpu.MustLookup("A100-40GB")
	k := kernels.NewEmbedding(2048, 1024, 50257)
	want := k.MemBytes() / (g.MemoryBWGBs * 1e9) * 1e3
	if got := MemBoundLatency(k, g); got != want {
		t.Fatalf("MemBoundLatency = %v, want %v", got, want)
	}
}

func TestTrainAndPredictInDistribution(t *testing.T) {
	p := trainSmall(t, 21)
	sim := gpusim.New()
	// In-distribution accuracy on freshly sampled kernels from the
	// training ranges, on training GPUs.
	eval := dataset.Generate(dataset.GenConfig{
		Seed: 99, BMM: 40, FC: 20, EW: 15, Softmax: 10, LN: 10,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, sim, nil)
	var errs []float64
	for _, s := range eval.Samples {
		pred, err := p.PredictKernel(s.Kernel, s.GPU)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, metrics.APE(pred, s.Latency))
	}
	mape := metrics.Mean(errs)
	if mape > 35 {
		t.Fatalf("in-distribution MAPE = %.1f%%, want < 35%%", mape)
	}
}

func TestGeneralizesToUnseenGPU(t *testing.T) {
	p := trainSmall(t, 22)
	sim := gpusim.New()
	eval := dataset.Generate(dataset.GenConfig{
		Seed: 100, BMM: 40, FC: 20, EW: 15, Softmax: 10, LN: 10,
		GPUs: gpu.TestSet(), MaxBMMDim: 1024,
	}, sim, nil)
	var errs []float64
	for _, s := range eval.Samples {
		pred, err := p.PredictKernel(s.Kernel, s.GPU)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, metrics.APE(pred, s.Latency))
	}
	mape := metrics.Mean(errs)
	// The paper's headline: error stays bounded on unseen GPUs.
	if mape > 60 {
		t.Fatalf("unseen-GPU MAPE = %.1f%%, want < 60%%", mape)
	}
}

// TestPredictionsRespectRoofline: the core design guarantee — predicted
// latency can never be faster than the roofline bound (util <= 1).
func TestPredictionsRespectRoofline(t *testing.T) {
	p := trainSmall(t, 23)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gpus := gpu.All()
		g := gpus[r.Intn(len(gpus))]
		k := kernels.NewBMM(1+r.Intn(64), 1+r.Intn(4096), 1+r.Intn(4096), 1+r.Intn(4096))
		pred, err := p.PredictKernel(k, g)
		if err != nil {
			return false
		}
		tl := p.TileDB.LookupOrSelect(k, g)
		c, _ := latencyConstant(k, g, tl)
		// c is the latency at util=1, the physical floor.
		return pred >= c*0.999 && pred > 0 && !math.IsNaN(pred)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationBounded(t *testing.T) {
	p := trainSmall(t, 24)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := kernels.NewBMM(1+r.Intn(128), 1+r.Intn(2048), 1+r.Intn(2048), 1+r.Intn(2048))
		g := gpu.All()[r.Intn(len(gpu.All()))]
		u, err := p.Utilization(k, g)
		return err == nil && u >= utilFloor-1e-9 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryBoundFallbackForUnseenOps(t *testing.T) {
	p := trainSmall(t, 25)
	g := gpu.MustLookup("H100")
	k := kernels.NewEmbedding(4096, 1024, 50257)
	got, err := p.PredictKernel(k, g)
	if err != nil {
		t.Fatal(err)
	}
	if got != MemBoundLatency(k, g) {
		t.Fatal("unseen ops must use the memory-bound fallback")
	}
}

func TestNetworkKernelRejected(t *testing.T) {
	p := NewPredictor(testConfig(), nil)
	if _, err := p.PredictKernel(kernels.NewAllReduce(1024), gpu.MustLookup("V100")); err == nil {
		t.Fatal("network kernels must be rejected")
	}
}

func TestUntrainedCategoryError(t *testing.T) {
	p := NewPredictor(testConfig(), nil)
	if _, err := p.PredictKernel(kernels.NewBMM(1, 64, 64, 64), gpu.MustLookup("V100")); err == nil {
		t.Fatal("expected ErrUntrained")
	}
}

// TestGenerationMovesOnRetrainAndProfiling: Generation must change on
// every event that can change a forecast — retraining a category and
// adding tile records — so generation-keyed serving caches invalidate.
func TestGenerationMovesOnRetrainAndProfiling(t *testing.T) {
	tdb := tile.NewDB()
	ds := dataset.Generate(dataset.GenConfig{
		Seed: 51, BMM: 40, FC: 20, EW: 15, Softmax: 8, LN: 8,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, gpusim.New(), tdb)
	p := NewPredictor(testConfig(), tdb)
	g0 := p.Generation()
	p.Train(ds)
	g1 := p.Generation()
	if g1 == g0 {
		t.Fatal("Generation must change after Train")
	}
	p.TrainCategory(kernels.CatBMM, ds.FilterCategory(kernels.CatBMM))
	g2 := p.Generation()
	if g2 == g1 {
		t.Fatal("Generation must change after a category retrain")
	}
	k := kernels.NewBMM(1, 32, 32, 32)
	gp := gpu.MustLookup("V100")
	p.TileDB.Add(k, gp, tile.Select(k, gp))
	if p.Generation() == g2 {
		t.Fatal("Generation must change when the tile database grows")
	}
}

// TestPredictKernelDetailMatchesPredictKernel: the Detail variant is the
// same pipeline plus the utilization — never a divergent fork.
func TestPredictKernelDetailMatchesPredictKernel(t *testing.T) {
	p := trainSmall(t, 31)
	g := gpu.MustLookup("H100")
	k := kernels.NewBMM(8, 384, 384, 384)
	lat, err := p.PredictKernel(k, g)
	if err != nil {
		t.Fatal(err)
	}
	dlat, util, err := p.PredictKernelDetail(k, g)
	if err != nil {
		t.Fatal(err)
	}
	if dlat != lat {
		t.Fatalf("detail latency %v != %v", dlat, lat)
	}
	if util <= 0 || util > 1 {
		t.Fatalf("utilization %v out of (0, 1]", util)
	}
	wantUtil, err := p.Utilization(k, g)
	if err != nil {
		t.Fatal(err)
	}
	if util != wantUtil {
		t.Fatalf("detail utilization %v != Utilization() %v", util, wantUtil)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := trainSmall(t, 26)
	g := gpu.MustLookup("L4")
	k := kernels.NewBMM(16, 768, 768, 768)
	want, err := p.PredictKernel(k, g)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	modelPath := filepath.Join(dir, "neusight.json")
	tilePath := filepath.Join(dir, "tiles.json")
	if err := p.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	if err := p.TileDB.Save(tilePath); err != nil {
		t.Fatal(err)
	}

	tdb, err := tile.LoadDB(tilePath)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(modelPath, tdb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.PredictKernel(k, g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("reloaded prediction %v != original %v", got, want)
	}
	if len(back.TrainedCategories()) != 5 {
		t.Fatalf("reloaded categories = %v", back.TrainedCategories())
	}
}

// graphOfThree builds a tiny LN -> Linear -> GELU graph.
func graphOfThree() *graph.Graph {
	g := graph.New("three")
	a := g.Add(kernels.NewLayerNorm(4096, 1024))
	b := g.Add(kernels.NewLinear(4096, 1024, 4096), a)
	g.Add(kernels.NewElementwise(kernels.OpEWGELU, 4096, 4096), b)
	return g
}

func TestPredictGraphSumsKernels(t *testing.T) {
	p := trainSmall(t, 27)
	g := gpu.MustLookup("A100-80GB")
	gr := graphOfThree()
	var want float64
	for _, k := range gr.Kernels() {
		l, err := p.PredictKernel(k, g)
		if err != nil {
			t.Fatal(err)
		}
		want += l
	}
	got, rep, err := p.PredictGraph(gr, g)
	if err != nil {
		t.Fatalf("PredictGraph: %v", err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("PredictGraph = %v, want %v", got, want)
	}
	if rep.Kernels != 3 || rep.Predicted != 3 || rep.Fallbacks != 0 {
		t.Fatalf("GraphReport = %+v, want 3 predicted", rep)
	}
}
