package core

import (
	"errors"
	"sync"
	"testing"

	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
	"neusight/internal/tile"
)

// trainSmallDataset generates a small profiled dataset for retraining
// scenarios (TestRecompileAfterTrain).
func trainSmallDataset(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.GenConfig{
		Seed: seed, BMM: 150, FC: 80, EW: 60, Softmax: 40, LN: 40,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, gpusim.New(), tile.NewDB())
}

// batchTestKernels is a mixed workload: every trained category, duplicates,
// a memory-bound fallback op, and an untrained-path embedding.
func batchTestKernels() []kernels.Kernel {
	return []kernels.Kernel{
		kernels.NewBMM(4, 128, 64, 128),
		kernels.NewLinear(64, 256, 128),
		kernels.NewElementwise(kernels.OpEWAdd, 64, 1024),
		kernels.NewSoftmax(64, 512),
		kernels.NewLayerNorm(64, 512),
		kernels.NewBMM(4, 128, 64, 128),      // duplicate of [0]
		kernels.NewEmbedding(64, 512, 30000), // memory-bound fallback
		kernels.NewBMM(8, 256, 128, 64),
	}
}

// TestPredictKernelsMatchesPredictKernel: the batch path must be
// bit-identical to the single-kernel compiled path for every item.
func TestPredictKernelsMatchesPredictKernel(t *testing.T) {
	p := trainSmall(t, 11)
	g := gpu.MustLookup("H100")
	ks := batchTestKernels()

	lats, errs := p.PredictKernels(ks, g)
	if len(lats) != len(ks) || len(errs) != len(ks) {
		t.Fatalf("batch returned %d/%d results for %d kernels", len(lats), len(errs), len(ks))
	}
	for i, k := range ks {
		want, err := p.PredictKernel(k, g)
		if err != nil {
			t.Fatalf("PredictKernel(%s): %v", k.Label(), err)
		}
		if errs[i] != nil {
			t.Fatalf("batch item %d (%s): %v", i, k.Label(), errs[i])
		}
		if lats[i] != want {
			t.Errorf("batch item %d (%s) = %v, want %v (single path)", i, k.Label(), lats[i], want)
		}
		if lats[i] <= 0 {
			t.Errorf("batch item %d (%s) = %v, want > 0", i, k.Label(), lats[i])
		}
	}
}

// TestCompiledPathMatchesAutodiffPath: the serving-path prediction must be
// bit-identical to the full autodiff expression it replaced.
func TestCompiledPathMatchesAutodiffPath(t *testing.T) {
	p := trainSmall(t, 12)
	for _, gname := range []string{"V100", "H100"} {
		g := gpu.MustLookup(gname)
		for _, k := range batchTestKernels() {
			want, err1 := p.predictKernelAutodiff(k, g)
			got, err2 := p.PredictKernel(k, g)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s on %s: error mismatch %v vs %v", k.Label(), gname, err1, err2)
			}
			if got != want {
				t.Errorf("%s on %s: compiled %v != autodiff %v", k.Label(), gname, got, want)
			}
		}
	}
}

func TestPredictKernelsPerItemErrors(t *testing.T) {
	p := trainSmall(t, 13)
	g := gpu.MustLookup("V100")
	ks := []kernels.Kernel{
		kernels.NewBMM(2, 64, 64, 64),
		kernels.NewAllReduce(1 << 20),       // network: must error in place
		kernels.NewEmbedding(32, 256, 1000), // memory-bound: fallback, no error
	}
	lats, errs := p.PredictKernels(ks, g)
	if errs[0] != nil || lats[0] <= 0 {
		t.Errorf("item 0 = (%v, %v), want positive latency", lats[0], errs[0])
	}
	if errs[1] == nil {
		t.Error("network kernel must produce a per-item error")
	}
	if errs[2] != nil {
		t.Errorf("memory-bound kernel errored: %v", errs[2])
	}
	if want := MemBoundLatency(ks[2], g); lats[2] != want {
		t.Errorf("memory-bound fallback = %v, want %v", lats[2], want)
	}
}

func TestPredictKernelsUntrained(t *testing.T) {
	p := NewPredictor(DefaultConfig(), nil)
	g := gpu.MustLookup("V100")
	lats, errs := p.PredictKernels([]kernels.Kernel{
		kernels.NewBMM(2, 32, 32, 32),
		kernels.NewEmbedding(8, 64, 1000),
	}, g)
	if !errors.Is(errs[0], ErrUntrained) {
		t.Errorf("untrained BMM error = %v, want ErrUntrained", errs[0])
	}
	if errs[1] != nil || lats[1] != MemBoundLatency(kernels.NewEmbedding(8, 64, 1000), g) {
		t.Errorf("memory-bound item = (%v, %v), want closed-form fallback", lats[1], errs[1])
	}
}

func TestPredictKernelsEmpty(t *testing.T) {
	p := trainSmall(t, 14)
	lats, errs := p.PredictKernels(nil, gpu.MustLookup("V100"))
	if len(lats) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch returned %d/%d results", len(lats), len(errs))
	}
}

// TestRecompileAfterTrain: retraining a category must invalidate the
// compiled snapshot so predictions pick up the new weights.
func TestRecompileAfterTrain(t *testing.T) {
	p := trainSmall(t, 15)
	g := gpu.MustLookup("V100")
	k := kernels.NewBMM(4, 96, 96, 96)

	before, err := p.PredictKernel(k, g) // forces compilation
	if err != nil {
		t.Fatal(err)
	}

	// Retrain the BMM category with different hyperparameters; the compiled
	// snapshot must be rebuilt, not reused.
	p.Cfg.Seed = 999
	ds := trainSmallDataset(t, 16)
	p.TrainCategory(kernels.CatBMM, ds.FilterCategory(kernels.CatBMM))
	after, err := p.PredictKernel(k, g)
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Error("prediction unchanged after retraining: stale compiled snapshot served")
	}
	// And the recompiled path must still agree with autodiff.
	want, _ := p.predictKernelAutodiff(k, g)
	if after != want {
		t.Errorf("recompiled prediction %v != autodiff %v", after, want)
	}
}

// TestPredictKernelsConcurrent hammers the batch API from many goroutines
// (run under -race by scripts/check.sh) against a serial reference.
func TestPredictKernelsConcurrent(t *testing.T) {
	p := trainSmall(t, 17)
	g := gpu.MustLookup("H100")
	ks := batchTestKernels()
	want, _ := p.PredictKernels(ks, g)

	const goroutines = 32
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				lats, errs := p.PredictKernels(ks, g)
				for j := range lats {
					if errs[j] != nil {
						errCh <- errs[j]
						return
					}
					if lats[j] != want[j] {
						errCh <- errors.New("concurrent batch prediction diverged")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
