package core

import (
	"fmt"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/mat"
)

// PredictKernels forecasts the latency of every kernel in ks on device g in
// milliseconds, amortizing the model evaluation across the batch: kernels
// are grouped by operator category, each group is featurized into a single
// batch matrix, normalized in one pass, and pushed through one compiled
// forward pass. A transformer graph's worth of kernels therefore costs a
// handful of matmuls instead of thousands of independent model walks.
//
// Results are positional: lats[i] and errs[i] correspond to ks[i].
// Per-item failures (network kernels, untrained categories) populate
// errs[i] without disturbing the rest of the batch; memory-bound kernels
// get their closed-form fallback. Each prediction is bit-identical to what
// PredictKernel returns for the same kernel.
func (p *Predictor) PredictKernels(ks []kernels.Kernel, g gpu.Spec) (lats []float64, errs []error) {
	lats, _, errs = p.PredictKernelsDetail(ks, g)
	return lats, errs
}

// PredictKernelsDetail is PredictKernels plus the bounded utilization
// behind each forecast (0 for memory-bound fallbacks), mirroring
// PredictKernelDetail batch-wide. It is the batch entry point of the
// predict.Engine adapter.
func (p *Predictor) PredictKernelsDetail(ks []kernels.Kernel, g gpu.Spec) (lats, utils []float64, errs []error) {
	lats = make([]float64, len(ks))
	utils = make([]float64, len(ks))
	errs = make([]error, len(ks))

	// Group batch positions by category. The map is tiny (≤7 categories);
	// the slices hold positions into ks so results land positionally.
	byCat := map[kernels.Category][]int{}
	for i, k := range ks {
		cat := k.Category()
		if cat == kernels.CatNetwork {
			errs[i] = fmt.Errorf("core: network kernel %s must be predicted by the network model", k.Label())
			continue
		}
		byCat[cat] = append(byCat[cat], i)
	}

	for cat, idxs := range byCat {
		cm, st, ok := p.compiledModel(cat)
		if !ok {
			for _, i := range idxs {
				if cat == kernels.CatMemoryBound {
					lats[i] = MemBoundLatency(ks[i], g)
				} else {
					errs[i] = fmt.Errorf("%w %v", ErrUntrained, cat)
				}
			}
			continue
		}

		// Featurize the whole group into one batch matrix. Tile resolution
		// goes through the same singleflight cache as single predictions,
		// so repeated shapes within the batch pay for one database scan —
		// and distinct cold shapes resolve in parallel, because on a cold
		// cache the O(records) nearest-match scans dominate the batch, not
		// the forward pass they feed.
		n := len(idxs)
		X := mat.New(n, NumFeatures)
		cs := make([]float64, n)
		ws := make([]float64, n)
		featurize := func(lo, hi int) {
			for row := lo; row < hi; row++ {
				i := idxs[row]
				t := p.tileFor(ks[i], g)
				c, waves := latencyConstant(ks[i], g, t)
				cs[row], ws[row] = c, float64(waves)
				copy(X.Row(row), Features(ks[i], g, t, waves))
			}
		}
		mat.ParallelFor(n, featurize)
		// One normalization pass over the batch.
		for row := 0; row < n; row++ {
			st.applyInPlace(X.Row(row))
		}
		// One compiled forward pass for the whole group.
		heads := cm.Forward(X)
		for row, i := range idxs {
			util := utilScalar(heads.At(row, 0), heads.At(row, 1), ws[row])
			lats[i] = cs[row] / util
			utils[i] = util
		}
	}
	return lats, utils, errs
}
