package core

import (
	"fmt"
	"math"

	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/tile"
)

// Ensemble trains several independently-seeded NeuSight predictors and
// forecasts with their mean, exposing the spread as a confidence signal.
// The paper's artifact notes ~10% run-to-run variance in real DNN
// latencies; an ensemble tells the user when a forecast is fragile (high
// spread) versus converged (the members agree).
type Ensemble struct {
	members []*Predictor
}

// NewEnsemble builds size untrained members sharing tdb, each with a
// distinct seed derived from cfg.Seed.
func NewEnsemble(cfg Config, tdb *tile.DB, size int) *Ensemble {
	if size < 1 {
		panic("core: ensemble needs at least one member")
	}
	e := &Ensemble{}
	for i := 0; i < size; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1009
		e.members = append(e.members, NewPredictor(c, tdb))
	}
	return e
}

// Name implements the predictor naming convention.
func (e *Ensemble) Name() string { return fmt.Sprintf("NeuSight-Ensemble(%d)", len(e.members)) }

// Size returns the member count.
func (e *Ensemble) Size() int { return len(e.members) }

// Train fits every member on ds.
func (e *Ensemble) Train(ds *dataset.Dataset) {
	for _, m := range e.members {
		m.Train(ds)
	}
}

// PredictKernel returns the ensemble-mean forecast for k on g.
func (e *Ensemble) PredictKernel(k kernels.Kernel, g gpu.Spec) (float64, error) {
	mean, _, err := e.PredictKernelWithSpread(k, g)
	return mean, err
}

// PredictKernelWithSpread returns the mean and standard deviation of the
// members' forecasts.
func (e *Ensemble) PredictKernelWithSpread(k kernels.Kernel, g gpu.Spec) (mean, std float64, err error) {
	preds := make([]float64, 0, len(e.members))
	for _, m := range e.members {
		p, err := m.PredictKernel(k, g)
		if err != nil {
			return 0, 0, err
		}
		preds = append(preds, p)
	}
	for _, p := range preds {
		mean += p
	}
	mean /= float64(len(preds))
	for _, p := range preds {
		std += (p - mean) * (p - mean)
	}
	std = math.Sqrt(std / float64(len(preds)))
	return mean, std, nil
}

// PredictGraphWithSpread aggregates graph forecasts per member, returning
// the mean and standard deviation of the end-to-end latency.
func (e *Ensemble) PredictGraphWithSpread(gr *graph.Graph, g gpu.Spec) (mean, std float64) {
	totals := make([]float64, len(e.members))
	for i, m := range e.members {
		totals[i], _, _ = m.PredictGraph(gr, g)
	}
	for _, t := range totals {
		mean += t
	}
	mean /= float64(len(totals))
	for _, t := range totals {
		std += (t - mean) * (t - mean)
	}
	std = math.Sqrt(std / float64(len(totals)))
	return mean, std
}
