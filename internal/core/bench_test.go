package core

import (
	"sync"
	"testing"

	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
	"neusight/internal/tile"
)

// benchState is the shared fixture for the prediction benchmarks: a trained
// predictor at the paper-family architecture scale used by `neusight serve
// -quick`, plus a pool of distinct BMM kernels to draw batches from.
var (
	benchOnce sync.Once
	benchPred *Predictor
	benchGPU  gpu.Spec
	benchPool []kernels.Kernel
)

func benchSetup(b *testing.B) (*Predictor, gpu.Spec) {
	b.Helper()
	benchOnce.Do(func() {
		tdb := tile.NewDB()
		ds := dataset.Generate(dataset.GenConfig{
			Seed: 21, BMM: 150, FC: 80, EW: 60, Softmax: 40, LN: 40,
			GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
		}, gpusim.New(), tdb)
		benchPred = NewPredictor(Config{
			Hidden: 48, Layers: 3, Epochs: 8, BatchSize: 256, LR: 3e-3, WeightDecay: 1e-4, Seed: 21,
		}, tdb)
		benchPred.Train(ds)
		benchGPU = gpu.MustLookup("H100")
		for i := 0; i < 256; i++ {
			benchPool = append(benchPool, kernels.NewBMM(1+i%8, 64+i, 64+(i*7)%512, 64+(i*13)%512))
		}
		// Pre-resolve every tile and force compilation so both benchmark
		// paths measure model evaluation, not first-touch database scans.
		benchPred.PredictKernels(benchPool, benchGPU)
	})
	return benchPred, benchGPU
}

// BenchmarkPredictKernelCompiled measures a cache-miss prediction on the
// serving path: tile lookup (memoized), featurization, one compiled forward
// pass, and the scalar utilization law. Compare against
// BenchmarkPredictKernelAutodiff — the acceptance bar is ≥5x fewer
// allocs/op and ≥2x lower ns/op.
func BenchmarkPredictKernelCompiled(b *testing.B) {
	p, g := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PredictKernel(benchPool[i%len(benchPool)], g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictKernelAutodiff measures the same prediction through the
// pre-compilation path: the full autodiff expression with graph nodes,
// gradient buffers, and backward closures that only training needs.
func BenchmarkPredictKernelAutodiff(b *testing.B) {
	p, g := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.predictKernelAutodiff(benchPool[i%len(benchPool)], g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictBatch measures PredictKernels across batch sizes; the
// per-kernel cost should fall as one forward pass amortizes over the batch.
func BenchmarkPredictBatch(b *testing.B) {
	p, g := benchSetup(b)
	for _, size := range []int{1, 16, 256} {
		b.Run(benchName(size), func(b *testing.B) {
			ks := benchPool[:size]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, errs := p.PredictKernels(ks, g)
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/kernel")
		})
	}
}

func benchName(size int) string {
	switch size {
	case 1:
		return "batch=1"
	case 16:
		return "batch=16"
	default:
		return "batch=256"
	}
}
