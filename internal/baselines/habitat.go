package baselines

import (
	"fmt"

	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
)

// Habitat reproduces the Habitat baseline (Yu et al.): operators are split
// into kernel-varying ops — predicted by per-category MLPs regressing
// latency directly — and kernel-alike ops — measured on a reference GPU in
// hand and scaled by the hardware-feature ratio (here bandwidth, since the
// scaled ops are memory-bound vector kernels). Section 6.1 of the paper
// uses V100 as the reference device (P100 when predicting V100 itself).
type Habitat struct {
	cfg  DirectConfig
	mlps map[kernels.Category]*DirectMLP

	// RefGPU is the in-hand device used for kernel-alike scaling.
	RefGPU gpu.Spec
	// AltRefGPU replaces RefGPU when the target is RefGPU itself.
	AltRefGPU gpu.Spec
	sim       *gpusim.Simulator
}

// kernelVarying are the categories Habitat models with MLPs.
var kernelVarying = map[kernels.Category]bool{
	kernels.CatBMM:    true,
	kernels.CatLinear: true,
}

// NewHabitat builds an untrained Habitat baseline measuring kernel-alike
// references with sim.
func NewHabitat(cfg DirectConfig, sim *gpusim.Simulator) *Habitat {
	return &Habitat{
		cfg:       cfg,
		mlps:      map[kernels.Category]*DirectMLP{},
		RefGPU:    gpu.MustLookup("V100"),
		AltRefGPU: gpu.MustLookup("P100"),
		sim:       sim,
	}
}

// Name identifies the predictor in reports.
func (h *Habitat) Name() string { return "Habitat" }

// Train fits the kernel-varying MLPs on ds.
func (h *Habitat) Train(ds *dataset.Dataset) {
	for cat := range kernelVarying {
		sub := ds.FilterCategory(cat)
		if sub.Len() == 0 {
			continue
		}
		m := NewDirectMLP(h.cfg)
		m.Train(sub.Samples)
		h.mlps[cat] = m
	}
}

// PredictKernel forecasts latency in milliseconds following Habitat's
// two-path design.
func (h *Habitat) PredictKernel(k kernels.Kernel, g gpu.Spec) (float64, error) {
	cat := k.Category()
	if cat == kernels.CatNetwork {
		return 0, fmt.Errorf("baselines: habitat does not model network kernels")
	}
	if kernelVarying[cat] {
		m, ok := h.mlps[cat]
		if !ok {
			return 0, fmt.Errorf("baselines: habitat MLP for %v not trained", cat)
		}
		return m.Predict(k, g)
	}
	// Kernel-alike path: measure on the reference GPU, scale by the
	// memory-bandwidth ratio (vector ops are bandwidth-bound).
	ref := h.RefGPU
	if g.Name == ref.Name {
		ref = h.AltRefGPU
	}
	refLat := h.sim.KernelLatency(k, ref)
	return refLat * (ref.MemoryBWGBs / g.MemoryBWGBs), nil
}
