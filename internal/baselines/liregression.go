package baselines

import (
	"fmt"

	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

// LiRegression reproduces Li et al. (MICRO'23): for each training GPU, a
// linear regression between kernel FLOP count and measured latency; across
// GPUs, a linear regression between memory bandwidth and achieved FLOPS
// used to extrapolate the per-GPU line to devices outside the training set.
// Regressions are per operator category (the paper fits per kernel type).
type LiRegression struct {
	// perGPU[cat][gpuName] = fitted (secPerFLOP, interceptMs).
	perGPU map[kernels.Category]map[string]line
	// crossGPU[cat] regresses achieved FLOP/ms (1/slope) and intercept on
	// memory bandwidth.
	crossGPU map[kernels.Category]crossFit
}

type line struct {
	slope     float64 // ms per FLOP
	intercept float64 // ms
}

type crossFit struct {
	// achieved = aAch*bw + bAch (FLOP per ms); intercept = aInt*bw + bInt.
	aAch, bAch float64
	aInt, bInt float64
	fitted     bool
}

// NewLiRegression returns an unfitted baseline.
func NewLiRegression() *LiRegression {
	return &LiRegression{
		perGPU:   map[kernels.Category]map[string]line{},
		crossGPU: map[kernels.Category]crossFit{},
	}
}

// Name identifies the predictor in reports.
func (l *LiRegression) Name() string { return "LiEtAl" }

// Train fits per-GPU FLOPs->latency lines and the cross-GPU bandwidth
// extrapolation.
func (l *LiRegression) Train(ds *dataset.Dataset) {
	// Group samples by (category, gpu).
	type key struct {
		cat kernels.Category
		gpu string
	}
	groups := map[key][]dataset.Sample{}
	specs := map[string]gpu.Spec{}
	for _, s := range ds.Samples {
		k := key{s.Kernel.Category(), s.GPU.Name}
		groups[k] = append(groups[k], s)
		specs[s.GPU.Name] = s.GPU
	}
	for k, samples := range groups {
		var xs, ys []float64
		for _, s := range samples {
			xs = append(xs, s.Kernel.FLOPs())
			ys = append(ys, s.Latency)
		}
		slope, intercept := leastSquares(xs, ys)
		if slope <= 0 {
			// Degenerate fit (can happen with tiny sample groups):
			// force a positive slope through the mean point.
			slope = mean(ys) / maxf(mean(xs), 1)
			intercept = 0
		}
		if l.perGPU[k.cat] == nil {
			l.perGPU[k.cat] = map[string]line{}
		}
		l.perGPU[k.cat][k.gpu] = line{slope: slope, intercept: intercept}
	}
	// Cross-GPU: achieved FLOP/ms and intercept vs memory bandwidth.
	for cat, byGPU := range l.perGPU {
		var bws, achieved, intercepts []float64
		for name, ln := range byGPU {
			bws = append(bws, specs[name].MemoryBWGBs)
			achieved = append(achieved, 1/ln.slope)
			intercepts = append(intercepts, ln.intercept)
		}
		if len(bws) < 2 {
			continue
		}
		aA, bA := leastSquares(bws, achieved)
		aI, bI := leastSquares(bws, intercepts)
		l.crossGPU[cat] = crossFit{aAch: aA, bAch: bA, aInt: aI, bInt: bI, fitted: true}
	}
}

// PredictKernel forecasts latency in milliseconds: the fitted line for
// training GPUs, the bandwidth-extrapolated line otherwise.
func (l *LiRegression) PredictKernel(k kernels.Kernel, g gpu.Spec) (float64, error) {
	cat := k.Category()
	if cat == kernels.CatNetwork {
		return 0, fmt.Errorf("baselines: li et al. does not model network kernels")
	}
	if byGPU, ok := l.perGPU[cat]; ok {
		if ln, ok := byGPU[g.Name]; ok {
			return positive(ln.slope*k.FLOPs() + ln.intercept), nil
		}
	}
	cf, ok := l.crossGPU[cat]
	if !ok || !cf.fitted {
		// No fit for this category: fall back to any GEMM fit, else error.
		if gemm, ok := l.crossGPU[kernels.CatBMM]; ok && gemm.fitted {
			cf = gemm
		} else {
			return 0, fmt.Errorf("baselines: li et al. not trained for %v", cat)
		}
	}
	achieved := cf.aAch*g.MemoryBWGBs + cf.bAch // FLOP per ms
	if achieved <= 0 {
		achieved = cf.bAch
	}
	if achieved <= 0 {
		return 0, fmt.Errorf("baselines: li et al. extrapolation degenerate for %s", g.Name)
	}
	intercept := cf.aInt*g.MemoryBWGBs + cf.bInt
	return positive(k.FLOPs()/achieved + intercept), nil
}

// leastSquares fits y = slope*x + intercept.
func leastSquares(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	mx, my := mean(xs), mean(ys)
	var num, den float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0, my
	}
	return num / den, my - num/den*mx
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// positive floors predictions at a microsecond — a regression line can dip
// below zero for tiny kernels.
func positive(v float64) float64 {
	if v < 1e-3 {
		return 1e-3
	}
	return v
}
