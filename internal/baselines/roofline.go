// Package baselines implements the three prior-work comparison points of
// the paper's evaluation (Section 6.1):
//
//   - Roofline analysis: the classic analytical bound, latency =
//     max(FLOPs/peak, bytes/bandwidth);
//   - Habitat (Yu et al., ATC'21): per-operator MLPs regressing kernel
//     latency directly from kernel dimensions and GPU spec features, with
//     reference-GPU scaling for "kernel-alike" vector operators;
//   - Li et al. (MICRO'23): per-GPU linear regression of latency on FLOP
//     count, extrapolated to unseen GPUs through a memory-bandwidth to
//     achieved-FLOPS regression.
//
// It also provides the direct-regression MLP and transformer predictors of
// the "larger predictors" study (Table 1).
package baselines

import (
	"math"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

// Roofline is the analytical baseline: perfectly optimistic execution at
// the device's peak compute or bandwidth, whichever binds.
type Roofline struct{}

// Name identifies the predictor in reports.
func (Roofline) Name() string { return "Roofline" }

// PredictKernel returns the roofline latency of k on g in milliseconds.
func (Roofline) PredictKernel(k kernels.Kernel, g gpu.Spec) (float64, error) {
	fp16 := k.DType == kernels.FP16
	peak := g.PeakFLOPSFor(fp16) * 1e12
	bw := g.MemoryBWGBs * 1e9
	compute := k.FLOPs() / peak
	memory := k.MemBytes() / bw
	return math.Max(compute, memory) * 1e3, nil
}
