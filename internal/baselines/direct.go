package baselines

import (
	"fmt"
	"math"
	"math/rand"

	ad "neusight/internal/autodiff"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/loss"
	"neusight/internal/mat"
	"neusight/internal/nn"
	"neusight/internal/opt"
)

// directFeatureCount is the input width of direct-regression predictors:
// four kernel dimensions plus four public GPU features (the Habitat feature
// set: memory size, memory bandwidth, number of SMs, peak FLOPS).
const directFeatureCount = 8

// directFeatures encodes (kernel, GPU) for direct latency regression.
// Dimensions are log-compressed; this is the representation that still
// fails to extrapolate because latency grows multiplicatively in the
// dimensions while the regressor extrapolates additively.
func directFeatures(k kernels.Kernel, g gpu.Spec) []float64 {
	return []float64{
		math.Log1p(float64(k.B)), math.Log1p(float64(k.M)),
		math.Log1p(float64(k.K)), math.Log1p(float64(k.N)),
		math.Log1p(g.MemoryGB), math.Log1p(g.MemoryBWGBs),
		math.Log1p(float64(g.SMs)), math.Log1p(g.PeakFLOPS),
	}
}

// directStats standardizes features column-wise.
type directStats struct {
	Mean, Std []float64
}

func fitDirectStats(rows [][]float64) directStats {
	n := float64(len(rows))
	st := directStats{Mean: make([]float64, directFeatureCount), Std: make([]float64, directFeatureCount)}
	for _, r := range rows {
		for j, v := range r {
			st.Mean[j] += v
		}
	}
	for j := range st.Mean {
		st.Mean[j] /= n
	}
	for _, r := range rows {
		for j, v := range r {
			d := v - st.Mean[j]
			st.Std[j] += d * d
		}
	}
	for j := range st.Std {
		st.Std[j] = math.Sqrt(st.Std[j]/n) + 1e-8
	}
	return st
}

func (st directStats) apply(r []float64) []float64 {
	out := make([]float64, len(r))
	for j, v := range r {
		out[j] = (v - st.Mean[j]) / st.Std[j]
	}
	return out
}

// DirectConfig sizes a direct-regression predictor.
type DirectConfig struct {
	Hidden    int
	Layers    int
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
}

// DefaultDirectConfig mirrors the "vanilla Habitat" setup at a size
// tractable for pure-Go training.
func DefaultDirectConfig() DirectConfig {
	return DirectConfig{Hidden: 64, Layers: 4, Epochs: 60, BatchSize: 256, LR: 3e-3, Seed: 7}
}

// DirectMLP regresses log-latency directly from (kernel, GPU) features —
// the modeling approach of Habitat's kernel-varying path and of the MLP
// rows in Table 1. Log-space regression is what produces the exponential
// blowups on out-of-distribution inputs that the paper reports.
type DirectMLP struct {
	cfg   DirectConfig
	mlp   *nn.MLP
	stats directStats
}

// NewDirectMLP returns an untrained direct regressor.
func NewDirectMLP(cfg DirectConfig) *DirectMLP { return &DirectMLP{cfg: cfg} }

// Train fits the regressor on the samples' measured latencies.
func (d *DirectMLP) Train(samples []dataset.Sample) float64 {
	rng := rand.New(rand.NewSource(d.cfg.Seed))
	d.mlp = nn.NewMLP(rng, nn.MLPConfig{
		In: directFeatureCount, Hidden: d.cfg.Hidden, Out: 1,
		Layers: d.cfg.Layers, Activation: nn.ActReLU,
	})
	var rows [][]float64
	for _, s := range samples {
		rows = append(rows, directFeatures(s.Kernel, s.GPU))
	}
	d.stats = fitDirectStats(rows)

	X := mat.New(len(samples), directFeatureCount)
	Y := mat.New(len(samples), 1)
	for i, s := range samples {
		copy(X.Row(i), d.stats.apply(rows[i]))
		Y.Data[i] = math.Log(math.Max(s.Latency, 1e-9))
	}
	optim := opt.NewAdamW(d.mlp.Params(), opt.AdamWConfig{LR: d.cfg.LR})
	n := len(samples)
	bs := d.cfg.BatchSize
	if bs > n {
		bs = n
	}
	var final float64
	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		optim.SetLR(opt.CosineDecay(d.cfg.LR, d.cfg.LR/20, epoch, d.cfg.Epochs))
		perm := rng.Perm(n)
		total, batches := 0.0, 0
		for lo := 0; lo < n; lo += bs {
			hi := lo + bs
			if hi > n {
				hi = n
			}
			xb := mat.New(hi-lo, directFeatureCount)
			yb := mat.New(hi-lo, 1)
			for i := lo; i < hi; i++ {
				copy(xb.Row(i-lo), X.Row(perm[i]))
				yb.Data[i-lo] = Y.Data[perm[i]]
			}
			l := loss.MSE(d.mlp.Forward(ad.NewConstant(xb)), ad.NewConstant(yb))
			ad.Backward(l)
			optim.Step()
			total += l.Data.Data[0]
			batches++
		}
		final = total / float64(batches)
	}
	return final
}

// Predict returns the regressed latency for k on g in milliseconds, or an
// error when the regressor has not been trained — matching the error
// semantics of every other predictor instead of panicking on a nil model.
func (d *DirectMLP) Predict(k kernels.Kernel, g gpu.Spec) (float64, error) {
	if d.mlp == nil {
		return 0, fmt.Errorf("baselines: direct MLP not trained")
	}
	f := d.stats.apply(directFeatures(k, g))
	x := ad.NewConstant(mat.FromSlice(1, directFeatureCount, f))
	return math.Exp(d.mlp.Forward(x).Data.Data[0]), nil
}

// DirectTransformer is the Prime-style transformer regressor of Table 1:
// feature tokens through encoder blocks to a scalar log-latency.
type DirectTransformer struct {
	cfg   DirectConfig
	tcfg  nn.TransformerConfig
	tr    *nn.Transformer
	stats directStats
}

// NewDirectTransformer returns an untrained transformer regressor with the
// given number of encoder layers.
func NewDirectTransformer(cfg DirectConfig, layers int) *DirectTransformer {
	return &DirectTransformer{
		cfg: cfg,
		tcfg: nn.TransformerConfig{
			Features: directFeatureCount, DModel: 16, Heads: 4, Layers: layers, FFN: 32,
		},
	}
}

// Train fits the transformer on the samples' measured latencies.
func (d *DirectTransformer) Train(samples []dataset.Sample) float64 {
	rng := rand.New(rand.NewSource(d.cfg.Seed))
	d.tr = nn.NewTransformer(rng, d.tcfg)
	var rows [][]float64
	for _, s := range samples {
		rows = append(rows, directFeatures(s.Kernel, s.GPU))
	}
	d.stats = fitDirectStats(rows)

	X := mat.New(len(samples), directFeatureCount)
	Y := mat.New(len(samples), 1)
	for i, s := range samples {
		copy(X.Row(i), d.stats.apply(rows[i]))
		Y.Data[i] = math.Log(math.Max(s.Latency, 1e-9))
	}
	optim := opt.NewAdamW(d.tr.Params(), opt.AdamWConfig{LR: d.cfg.LR})
	n := len(samples)
	bs := d.cfg.BatchSize
	if bs > n {
		bs = n
	}
	var final float64
	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		perm := rng.Perm(n)
		total, batches := 0.0, 0
		for lo := 0; lo < n; lo += bs {
			hi := lo + bs
			if hi > n {
				hi = n
			}
			xb := mat.New(hi-lo, directFeatureCount)
			yb := mat.New(hi-lo, 1)
			for i := lo; i < hi; i++ {
				copy(xb.Row(i-lo), X.Row(perm[i]))
				yb.Data[i-lo] = Y.Data[perm[i]]
			}
			l := loss.MSE(d.tr.Forward(ad.NewConstant(xb)), ad.NewConstant(yb))
			ad.Backward(l)
			optim.Step()
			total += l.Data.Data[0]
			batches++
		}
		final = total / float64(batches)
	}
	return final
}

// Predict returns the regressed latency for k on g in milliseconds, or an
// error when the regressor has not been trained.
func (d *DirectTransformer) Predict(k kernels.Kernel, g gpu.Spec) (float64, error) {
	if d.tr == nil {
		return 0, fmt.Errorf("baselines: direct transformer not trained")
	}
	f := d.stats.apply(directFeatures(k, g))
	x := ad.NewConstant(mat.FromSlice(1, directFeatureCount, f))
	return math.Exp(d.tr.Forward(x).Data.Data[0]), nil
}
