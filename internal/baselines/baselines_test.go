package baselines

import (
	"math"
	"testing"

	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
	"neusight/internal/metrics"
)

func genData(t *testing.T, seed int64, gpus []gpu.Spec) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.GenConfig{
		Seed: seed, BMM: 120, FC: 60, EW: 40, Softmax: 20, LN: 20,
		GPUs: gpus, MaxBMMDim: 1024,
	}, gpusim.New(), nil)
}

func fastCfg() DirectConfig {
	return DirectConfig{Hidden: 32, Layers: 2, Epochs: 25, BatchSize: 128, LR: 5e-3, Seed: 3}
}

func TestRooflineIsOptimisticBound(t *testing.T) {
	sim := gpusim.New()
	r := Roofline{}
	g := gpu.MustLookup("V100")
	for _, k := range []kernels.Kernel{
		kernels.NewBMM(16, 1024, 1024, 1024),
		kernels.NewLinear(4096, 4096, 4096),
		kernels.NewElementwise(kernels.OpEWAdd, 8192, 4096),
	} {
		pred, err := r.PredictKernel(k, g)
		if err != nil {
			t.Fatal(err)
		}
		measured := sim.KernelLatency(k, g)
		if pred > measured {
			t.Fatalf("roofline %v slower than measured %v for %s — must be a lower bound", pred, measured, k.Label())
		}
		if pred <= 0 {
			t.Fatalf("non-positive roofline for %s", k.Label())
		}
	}
}

func TestRooflineFP16UsesTensorCorePeak(t *testing.T) {
	r := Roofline{}
	g := gpu.MustLookup("H100")
	k32 := kernels.NewBMM(64, 4096, 4096, 4096)
	p32, _ := r.PredictKernel(k32, g)
	p16, _ := r.PredictKernel(k32.WithDType(kernels.FP16), g)
	if p16 >= p32/2 {
		t.Fatalf("fp16 roofline %v not reflecting tensor-core peak vs %v", p16, p32)
	}
}

func TestDirectMLPLearnsInDistribution(t *testing.T) {
	ds := genData(t, 31, gpu.TrainSet())
	bmm := ds.FilterCategory(kernels.CatBMM)
	train, val := bmm.Split(0.25, 5)
	m := NewDirectMLP(fastCfg())
	m.Train(train.Samples)
	var errs []float64
	for _, s := range val.Samples {
		pred, err := m.Predict(s.Kernel, s.GPU)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, metrics.APE(pred, s.Latency))
	}
	if mape := metrics.Mean(errs); mape > 80 {
		t.Fatalf("direct MLP in-distribution MAPE = %.1f%%, want < 80%%", mape)
	}
}

func TestHabitatTrainsAndPredicts(t *testing.T) {
	sim := gpusim.New()
	ds := genData(t, 32, gpu.TrainSet())
	h := NewHabitat(fastCfg(), sim)
	h.Train(ds)

	g := gpu.MustLookup("T4")
	if _, err := h.PredictKernel(kernels.NewBMM(8, 512, 512, 512), g); err != nil {
		t.Fatal(err)
	}
	// Kernel-alike path: EW prediction scales the V100 reference by the
	// bandwidth ratio.
	k := kernels.NewElementwise(kernels.OpEWAdd, 8192, 2048)
	got, err := h.PredictKernel(k, g)
	if err != nil {
		t.Fatal(err)
	}
	ref := gpu.MustLookup("V100")
	want := sim.KernelLatency(k, ref) * (ref.MemoryBWGBs / g.MemoryBWGBs)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("kernel-alike scaling = %v, want %v", got, want)
	}
}

func TestHabitatUsesAltReferenceForV100(t *testing.T) {
	sim := gpusim.New()
	h := NewHabitat(fastCfg(), sim)
	k := kernels.NewElementwise(kernels.OpEWTanh, 4096, 1024)
	v100 := gpu.MustLookup("V100")
	got, err := h.PredictKernel(k, v100)
	if err != nil {
		t.Fatal(err)
	}
	p100 := gpu.MustLookup("P100")
	want := sim.KernelLatency(k, p100) * (p100.MemoryBWGBs / v100.MemoryBWGBs)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("V100 must scale from P100: got %v, want %v", got, want)
	}
}

func TestHabitatRejectsNetwork(t *testing.T) {
	h := NewHabitat(fastCfg(), gpusim.New())
	if _, err := h.PredictKernel(kernels.NewAllReduce(100), gpu.MustLookup("V100")); err == nil {
		t.Fatal("expected error for network kernels")
	}
}

// TestHabitatDegradesOOD reproduces the Figure 2a phenomenon: the direct
// MLP's error on out-of-distribution BMMs (dims > training cap) is much
// larger than in-distribution.
func TestHabitatDegradesOOD(t *testing.T) {
	sim := gpusim.New()
	ds := genData(t, 33, gpu.TrainSet())
	h := NewHabitat(fastCfg(), sim)
	h.Train(ds)

	inDist := dataset.Generate(dataset.GenConfig{
		Seed: 41, BMM: 60, GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, sim, nil)
	ood := dataset.Generate(dataset.GenConfig{
		Seed: 42, BMM: 60, GPUs: gpu.TestSet(), MaxBMMDim: 4096,
	}, sim, nil)
	errOf := func(d *dataset.Dataset) float64 {
		var errs []float64
		for _, s := range d.Samples {
			p, err := h.PredictKernel(s.Kernel, s.GPU)
			if err != nil {
				t.Fatal(err)
			}
			errs = append(errs, metrics.APE(p, s.Latency))
		}
		return metrics.Mean(errs)
	}
	in, out := errOf(inDist), errOf(ood)
	if out < in*1.5 {
		t.Fatalf("OOD error %.1f%% not clearly worse than in-dist %.1f%%", out, in)
	}
}

func TestLiRegressionInDistribution(t *testing.T) {
	ds := genData(t, 34, gpu.TrainSet())
	l := NewLiRegression()
	l.Train(ds)
	// On a training GPU with a large (linear-regime) GEMM the fit should
	// be in the right ballpark.
	sim := gpusim.New()
	g := gpu.MustLookup("A100-40GB")
	k := kernels.NewBMM(64, 1024, 1024, 1024)
	pred, err := l.PredictKernel(k, g)
	if err != nil {
		t.Fatal(err)
	}
	measured := sim.KernelLatency(k, g)
	if e := metrics.APE(pred, measured); e > 100 {
		t.Fatalf("Li et al. large-GEMM in-dist error = %.1f%%, want < 100%%", e)
	}
}

func TestLiRegressionExtrapolatesToUnseenGPU(t *testing.T) {
	ds := genData(t, 35, gpu.TrainSet())
	l := NewLiRegression()
	l.Train(ds)
	// Unseen GPU goes through the bandwidth regression; must be positive
	// and finite.
	pred, err := l.PredictKernel(kernels.NewBMM(16, 2048, 2048, 2048), gpu.MustLookup("H100"))
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 || math.IsInf(pred, 0) || math.IsNaN(pred) {
		t.Fatalf("extrapolated prediction = %v", pred)
	}
}

// TestLiRegressionFailsOnSmallKernels reproduces Figure 2b: the linear
// assumption breaks for small GEMMs where the GPU is under-utilized.
func TestLiRegressionFailsOnSmallKernels(t *testing.T) {
	ds := genData(t, 36, gpu.TrainSet())
	l := NewLiRegression()
	l.Train(ds)
	sim := gpusim.New()
	g := gpu.MustLookup("V100")

	small := kernels.NewBMM(1, 32, 32, 32)
	big := kernels.NewBMM(64, 1024, 1024, 1024)
	smallErr := predErr(t, l, small, g, sim)
	bigErr := predErr(t, l, big, g, sim)
	if smallErr < bigErr {
		t.Fatalf("small-GEMM error %.1f%% should exceed large-GEMM error %.1f%%", smallErr, bigErr)
	}
}

func predErr(t *testing.T, l *LiRegression, k kernels.Kernel, g gpu.Spec, sim *gpusim.Simulator) float64 {
	t.Helper()
	p, err := l.PredictKernel(k, g)
	if err != nil {
		t.Fatal(err)
	}
	return metrics.APE(p, sim.KernelLatency(k, g))
}

func TestLeastSquaresExactLine(t *testing.T) {
	s, i := leastSquares([]float64{1, 2, 3}, []float64{5, 7, 9})
	if math.Abs(s-2) > 1e-12 || math.Abs(i-3) > 1e-12 {
		t.Fatalf("leastSquares = %v, %v; want 2, 3", s, i)
	}
	// Degenerate x: slope 0, intercept mean(y).
	s, i = leastSquares([]float64{4, 4}, []float64{1, 3})
	if s != 0 || i != 2 {
		t.Fatalf("degenerate fit = %v, %v", s, i)
	}
}

func TestDirectTransformerTrains(t *testing.T) {
	ds := genData(t, 37, gpu.TrainSet())
	bmm := ds.FilterCategory(kernels.CatBMM)
	cfg := fastCfg()
	cfg.Epochs = 8
	cfg.BatchSize = 64
	tr := NewDirectTransformer(cfg, 1)
	final := tr.Train(bmm.Samples[:200])
	if math.IsNaN(final) || math.IsInf(final, 0) {
		t.Fatalf("transformer training diverged: %v", final)
	}
	p, err := tr.Predict(kernels.NewBMM(4, 256, 256, 256), gpu.MustLookup("T4"))
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || math.IsNaN(p) {
		t.Fatalf("transformer prediction = %v", p)
	}
}

func TestDirectPredictorsUntrainedError(t *testing.T) {
	k := kernels.NewBMM(2, 64, 64, 64)
	g := gpu.MustLookup("V100")
	if _, err := NewDirectMLP(fastCfg()).Predict(k, g); err == nil {
		t.Fatal("untrained direct MLP must error, not panic")
	}
	if _, err := NewDirectTransformer(fastCfg(), 1).Predict(k, g); err == nil {
		t.Fatal("untrained direct transformer must error, not panic")
	}
}
