// fusion demonstrates the operator-fusion support of paper Section 4.4:
// it builds GPT2-Large's inference graph, applies the torch.compile-style
// fusion pass, and compares measured and predicted latency for both — the
// Table 7 experiment in miniature.
//
//	go run ./examples/fusion
package main

import (
	"fmt"

	"neusight/internal/core"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/graph"
	"neusight/internal/models"
	"neusight/internal/tile"
)

func main() {
	tileDB := tile.NewDB()
	sim := gpusim.New()
	data := dataset.Generate(dataset.GenConfig{
		Seed: 3, BMM: 300, FC: 150, EW: 120, Softmax: 60, LN: 60,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, sim, tileDB)
	predictor := core.NewPredictor(core.Config{
		Hidden: 48, Layers: 3, Epochs: 40, BatchSize: 256,
		LR: 3e-3, WeightDecay: 1e-4, Seed: 3,
	}, tileDB)
	predictor.Train(data)

	gpt2 := models.MustLookup("GPT2-Large")
	a100 := gpu.MustLookup("A100-40GB")

	plain := gpt2.InferenceGraph(4)
	fused := graph.Fuse(plain)
	fmt.Printf("GPT2-Large batch 4 on A100-40GB\n")
	fmt.Printf("kernels: %d unfused -> %d fused\n", len(plain.Nodes), len(fused.Nodes))

	measure := func(g *graph.Graph) float64 {
		total := 0.0
		for _, k := range g.Kernels() {
			total += sim.KernelLatency(k, a100)
		}
		return total
	}
	mPlain, mFused := measure(plain), measure(fused)
	pPlain, _, _ := predictor.PredictGraph(plain, a100)
	pFused, _, _ := predictor.PredictGraph(fused, a100)

	fmt.Printf("measured:  %8.1f ms unfused, %8.1f ms fused (%.1f%% faster)\n",
		mPlain, mFused, (mPlain-mFused)/mPlain*100)
	fmt.Printf("predicted: %8.1f ms unfused (%.1f%% err), %8.1f ms fused (%.1f%% err)\n",
		pPlain, abs(pPlain-mPlain)/mPlain*100,
		pFused, abs(pFused-mFused)/mFused*100)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
