// Quickstart: forecast GPT3-XL first-token inference latency on an H100 —
// a GPU the predictor has never been trained on — in a few lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"neusight/internal/core"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/models"
	"neusight/internal/tile"
)

func main() {
	// 1. Profile DNN operators on the (simulated) training GPUs — the
	//    older-generation devices you actually have access to.
	tileDB := tile.NewDB()
	data := dataset.Generate(dataset.GenConfig{
		Seed: 1, BMM: 300, FC: 150, EW: 120, Softmax: 60, LN: 60,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, gpusim.New(), tileDB)

	// 2. Train NeuSight's per-operator utilization predictors.
	predictor := core.NewPredictor(core.Config{
		Hidden: 48, Layers: 3, Epochs: 40, BatchSize: 256,
		LR: 3e-3, WeightDecay: 1e-4, Seed: 1,
	}, tileDB)
	predictor.Train(data)

	// 3. Forecast a model the predictor never saw on a GPU it never saw.
	gpt3 := models.MustLookup("GPT3-XL")
	h100 := gpu.MustLookup("H100")
	graph := gpt3.InferenceGraph(2)

	latency, _, _ := predictor.PredictGraph(graph, h100)
	fmt.Printf("GPT3-XL (batch 2) first-token inference on H100: %.1f ms predicted\n", latency)

	// Compare against the simulated "measurement" (in the paper this
	// would require owning an H100).
	sim := gpusim.New()
	total := 0.0
	for _, k := range graph.Kernels() {
		total += sim.KernelLatency(k, h100)
	}
	fmt.Printf("simulated ground truth: %.1f ms (error %.1f%%)\n",
		total, abs(latency-total)/total*100)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
