// amd reproduces the cross-vendor study of paper Figure 9 in miniature:
// NeuSight trained only on AMD MI100/MI210 measurements forecasting the
// held-out MI250 — demonstrating that the tile/wave/roofline decomposition
// is not CUDA-specific.
//
//	go run ./examples/amd
package main

import (
	"fmt"

	"neusight/internal/core"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/models"
	"neusight/internal/tile"
)

func main() {
	sim := gpusim.New()
	tileDB := tile.NewDB()
	data := dataset.Generate(dataset.GenConfig{
		Seed: 4, BMM: 300, FC: 150, EW: 120, Softmax: 60, LN: 60,
		GPUs: gpu.AMDTrainSet(), MaxBMMDim: 1024, // MI100 + MI210 only
	}, sim, tileDB)
	predictor := core.NewPredictor(core.Config{
		Hidden: 48, Layers: 3, Epochs: 40, BatchSize: 256,
		LR: 3e-3, WeightDecay: 1e-4, Seed: 4,
	}, tileDB)
	predictor.Train(data)

	mi250 := gpu.MustLookup("MI250")
	fmt.Println("NeuSight trained on MI100/MI210, forecasting MI250:")
	for _, name := range []string{"BERT-Large", "GPT2-Large", "GPT3-XL", "OPT-1.3B"} {
		m := models.MustLookup(name)
		gr := m.InferenceGraph(4)
		pred, _, _ := predictor.PredictGraph(gr, mi250)
		measured := 0.0
		for _, k := range gr.Kernels() {
			measured += sim.KernelLatency(k, mi250)
		}
		fmt.Printf("  %-12s batch 4: predicted %8.1f ms, simulated %8.1f ms (error %.1f%%)\n",
			name, pred, measured, abs(pred-measured)/measured*100)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
