// gpt3_multigpu forecasts distributed training the way the paper's
// Section 6.3 does: GPT2-Large across a 4x H100 DGX box under data, tensor,
// and pipeline parallelism, then GPT-3 scale across 1-3840 multi-GPU nodes
// with tensor parallelism inside each node and data parallelism across the
// fat-tree.
//
//	go run ./examples/gpt3_multigpu
package main

import (
	"fmt"

	"neusight/internal/core"
	"neusight/internal/dataset"
	"neusight/internal/distributed"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
	"neusight/internal/models"
	"neusight/internal/network"
	"neusight/internal/tile"
)

func main() {
	predictor := trainPredictor()
	h100Box := gpu.MustLookupServer("H100x4-DGX")

	// Calibrate the link model on the system we "own" (paper Section 5.1:
	// measure link utilization of an existing system, apply it to the
	// target's peak bandwidth).
	link := network.Calibrate(network.NewSim(), gpu.MustLookupServer("V100x4-NVLink"))

	kernelLat := func(k kernels.Kernel) float64 {
		l, err := predictor.PredictKernel(k, h100Box.GPU)
		if err != nil {
			return core.MemBoundLatency(k, h100Box.GPU)
		}
		return l
	}

	fmt.Println("GPT2-Large training, global batch 4, on 4x H100 (DGX):")
	for _, s := range []distributed.Strategy{
		distributed.DataParallel, distributed.TensorParallel, distributed.PipelineParallel,
	} {
		f, err := distributed.Estimate(distributed.Plan{
			Model: models.MustLookup("GPT2-Large"), GlobalBatch: 4,
			Server: h100Box, Strategy: s, Training: true,
		}, kernelLat, link)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-18s %8.1f ms  (compute %.1f + network %.1f)\n",
			s, f.TotalMs, f.ComputeMs, f.NetworkMs)
	}

	fmt.Println("\nGPT-3 multi-node training forecast (8x H100 per node, TP8 + DP):")
	node := gpu.MustLookupServer("H100x8-DGX")
	tree := network.Table9Hierarchy(0.8)
	for _, nodes := range []int{1, 4, 384, 768, 3840} {
		f, err := distributed.EstimateMultiNode(distributed.MultiNodePlan{
			Model: models.GPT3MultiNode(), Nodes: nodes, Server: node,
			PerNodeBatch: 8, Tree: tree, DType: kernels.FP16,
		}, kernelLat, link)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %5d nodes: %10.1f ms per iteration\n", nodes, f.TotalMs)
	}
}

func trainPredictor() *core.Predictor {
	tileDB := tile.NewDB()
	data := dataset.Generate(dataset.GenConfig{
		Seed: 2, BMM: 300, FC: 150, EW: 120, Softmax: 60, LN: 60,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, gpusim.New(), tileDB)
	p := core.NewPredictor(core.Config{
		Hidden: 48, Layers: 3, Epochs: 40, BatchSize: 256,
		LR: 3e-3, WeightDecay: 1e-4, Seed: 2,
	}, tileDB)
	p.Train(data)
	return p
}
