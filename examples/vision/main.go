// vision forecasts a CNN — ResNet-50, the workload the paper's intro uses
// to illustrate why cycle-accurate simulation is impractical ("up to 18
// hours to simulate ResNet-50 with a batch size of 256") — on two GPUs the
// predictor never trained on, including the announced-but-unreleased B200,
// whose spec-sheet features are all NeuSight needs.
//
//	go run ./examples/vision
package main

import (
	"fmt"
	"time"

	"neusight/internal/core"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/models"
	"neusight/internal/tile"
)

func main() {
	tileDB := tile.NewDB()
	sim := gpusim.New()
	data := dataset.Generate(dataset.GenConfig{
		Seed: 5, BMM: 300, FC: 150, EW: 120, Softmax: 60, LN: 60,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, sim, tileDB)
	predictor := core.NewPredictor(core.Config{
		Hidden: 48, Layers: 3, Epochs: 40, BatchSize: 256,
		LR: 3e-3, WeightDecay: 1e-4, Seed: 5,
	}, tileDB)
	predictor.Train(data)

	graph := models.ResNet50InferenceGraph(256)
	fmt.Printf("ResNet-50, batch 256, %d kernels, %.2f GFLOPs per image\n",
		len(graph.Nodes), graph.TotalFLOPs()/256/1e9)

	for _, name := range []string{"L4", "H100", "B200"} {
		g := gpu.MustLookup(name)
		start := time.Now()
		pred, _, _ := predictor.PredictGraph(graph, g)
		elapsed := time.Since(start)
		line := fmt.Sprintf("  %-5s predicted %8.1f ms (forecast computed in %s)", name, pred, elapsed.Round(time.Millisecond))
		if name != "B200" {
			measured := 0.0
			for _, k := range graph.Kernels() {
				measured += sim.KernelLatency(k, g)
			}
			line += fmt.Sprintf("; simulated %8.1f ms, error %.1f%%", measured, abs(pred-measured)/measured*100)
		} else {
			line += "; no hardware exists to validate against — the paper's exact scenario"
		}
		fmt.Println(line)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
