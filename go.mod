module neusight

go 1.21
